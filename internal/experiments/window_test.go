package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/scan"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

// TestWindowQueryAgreement cross-checks window (box) queries across every
// access method.
func TestWindowQueryAgreement(t *testing.T) {
	cfg := Config{Dataset: dataset.Uniform, Seed: 9, N: 5000, Dim: 6, Queries: 0}
	cfg = cfg.withDefaults()
	pts, err := dataset.Generate(cfg.Dataset, cfg.Seed, cfg.N, cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}

	windows := []vec.MBR{
		{Lo: vec.Point{0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, Hi: vec.Point{0.5, 0.5, 0.6, 0.7, 0.8, 0.9}},
		{Lo: vec.Point{0.4, 0, 0, 0, 0, 0}, Hi: vec.Point{0.6, 1, 1, 1, 1, 1}},
		{Lo: vec.Point{0.9, 0.9, 0.9, 0.9, 0.9, 0.9}, Hi: vec.Point{1, 1, 1, 1, 1, 1}},
	}

	want := make([]map[uint32]bool, len(windows))
	for wi, w := range windows {
		want[wi] = map[uint32]bool{}
		for i, p := range pts {
			if w.Contains(p) {
				want[wi][uint32(i)] = true
			}
		}
	}

	check := func(name string, run func(w vec.MBR) []vec.Neighbor) {
		for wi, w := range windows {
			got := run(w)
			if len(got) != len(want[wi]) {
				t.Fatalf("%s window %d: %d results, want %d", name, wi, len(got), len(want[wi]))
			}
			for _, nb := range got {
				if !want[wi][nb.ID] {
					t.Fatalf("%s window %d: unexpected id %d", name, wi, nb.ID)
				}
			}
		}
	}

	must := func(res []vec.Neighbor, err error) []vec.Neighbor {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	iqStore := store.NewSim(cfg.Disk)
	tr, err := core.Build(iqStore, pts, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	check("iqtree", func(w vec.MBR) []vec.Neighbor { return must(tr.WindowQuery(iqStore.NewSession(), w)) })

	xStore := store.NewSim(cfg.Disk)
	xt, err := xtree.Build(xStore, pts, xtree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	check("xtree", func(w vec.MBR) []vec.Neighbor { return must(xt.WindowQuery(xStore.NewSession(), w)) })

	vStore := store.NewSim(cfg.Disk)
	va, err := vafile.Build(vStore, pts, vafile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	check("vafile", func(w vec.MBR) []vec.Neighbor { return must(va.WindowQuery(vStore.NewSession(), w)) })

	sStore := store.NewSim(cfg.Disk)
	sc, err := scan.Build(sStore, pts, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	check("scan", func(w vec.MBR) []vec.Neighbor { return must(sc.WindowQuery(sStore.NewSession(), w)) })
}
