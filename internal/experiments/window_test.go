package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/disk"
	"repro/internal/scan"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

// TestWindowQueryAgreement cross-checks window (box) queries across every
// access method.
func TestWindowQueryAgreement(t *testing.T) {
	cfg := Config{Dataset: dataset.Uniform, Seed: 9, N: 5000, Dim: 6, Queries: 0}
	cfg = cfg.withDefaults()
	pts, err := dataset.Generate(cfg.Dataset, cfg.Seed, cfg.N, cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}

	windows := []vec.MBR{
		{Lo: vec.Point{0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, Hi: vec.Point{0.5, 0.5, 0.6, 0.7, 0.8, 0.9}},
		{Lo: vec.Point{0.4, 0, 0, 0, 0, 0}, Hi: vec.Point{0.6, 1, 1, 1, 1, 1}},
		{Lo: vec.Point{0.9, 0.9, 0.9, 0.9, 0.9, 0.9}, Hi: vec.Point{1, 1, 1, 1, 1, 1}},
	}

	want := make([]map[uint32]bool, len(windows))
	for wi, w := range windows {
		want[wi] = map[uint32]bool{}
		for i, p := range pts {
			if w.Contains(p) {
				want[wi][uint32(i)] = true
			}
		}
	}

	check := func(name string, run func(w vec.MBR) []vec.Neighbor) {
		for wi, w := range windows {
			got := run(w)
			if len(got) != len(want[wi]) {
				t.Fatalf("%s window %d: %d results, want %d", name, wi, len(got), len(want[wi]))
			}
			for _, nb := range got {
				if !want[wi][nb.ID] {
					t.Fatalf("%s window %d: unexpected id %d", name, wi, nb.ID)
				}
			}
		}
	}

	iqDisk := disk.New(cfg.Disk)
	tr, err := core.Build(iqDisk, pts, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	check("iqtree", func(w vec.MBR) []vec.Neighbor { return tr.WindowQuery(iqDisk.NewSession(), w) })

	xDisk := disk.New(cfg.Disk)
	xt := xtree.Build(xDisk, pts, xtree.DefaultOptions())
	check("xtree", func(w vec.MBR) []vec.Neighbor { return xt.WindowQuery(xDisk.NewSession(), w) })

	vDisk := disk.New(cfg.Disk)
	va := vafile.Build(vDisk, pts, vafile.DefaultOptions())
	check("vafile", func(w vec.MBR) []vec.Neighbor { return va.WindowQuery(vDisk.NewSession(), w) })

	sDisk := disk.New(cfg.Disk)
	sc := scan.Build(sDisk, pts, vec.Euclidean)
	check("scan", func(w vec.MBR) []vec.Neighbor { return sc.WindowQuery(sDisk.NewSession(), w) })
}
