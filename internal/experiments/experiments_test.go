package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/scan"
	"repro/internal/store"
	"repro/internal/vafile"
	"repro/internal/vec"
	"repro/internal/xtree"
)

// TestAllMethodsAgreeOnNearestNeighbor is the central cross-method
// integration test: IQ-tree (all variants), X-tree, VA-file and scan must
// return the same nearest-neighbor distances on the same workload.
func TestAllMethodsAgreeOnNearestNeighbor(t *testing.T) {
	for _, ds := range []dataset.Name{dataset.Uniform, dataset.CAD, dataset.Weather} {
		cfg := Config{Dataset: ds, Seed: 3, N: 4000, Dim: 10, Queries: 12}
		cfg = cfg.withDefaults()
		db, queries, err := cfg.data()
		if err != nil {
			t.Fatal(err)
		}

		var reference [][]float64
		{
			sto := store.NewSim(cfg.Disk)
			sc, err := scan.Build(sto, db, vec.Euclidean)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				res, err := sc.KNN(sto.NewSession(), q, 3)
				if err != nil {
					t.Fatal(err)
				}
				ds := make([]float64, len(res))
				for i, nb := range res {
					ds[i] = nb.Dist
				}
				reference = append(reference, ds)
			}
		}

		check := func(name string, knn func(q vec.Point) []vec.Neighbor) {
			for qi, q := range queries {
				res := knn(q)
				if len(res) != len(reference[qi]) {
					t.Fatalf("%s on %s: %d results, want %d", name, ds, len(res), len(reference[qi]))
				}
				for i := range res {
					if math.Abs(res[i].Dist-reference[qi][i]) > 1e-5 {
						t.Fatalf("%s on %s query %d: dist %.7f, want %.7f",
							name, ds, qi, res[i].Dist, reference[qi][i])
					}
				}
			}
		}

		for _, variant := range []struct {
			name string
			opt  core.Options
		}{
			{"iq", core.DefaultOptions()},
			{"iq-noquant", func() core.Options { o := core.DefaultOptions(); o.Quantize = false; return o }()},
			{"iq-noopt", func() core.Options { o := core.DefaultOptions(); o.OptimizedIO = false; return o }()},
			{"iq-maxmetric-model", func() core.Options { o := core.DefaultOptions(); o.UniformModel = true; return o }()},
		} {
			sto := store.NewSim(cfg.Disk)
			tr, err := core.Build(sto, db, variant.opt)
			if err != nil {
				t.Fatal(err)
			}
			check(variant.name, func(q vec.Point) []vec.Neighbor {
				res, err := tr.KNN(sto.NewSession(), q, 3)
				if err != nil {
					t.Fatal(err)
				}
				return res
			})
		}
		{
			sto := store.NewSim(cfg.Disk)
			xt, err := xtree.Build(sto, db, xtree.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			check("xtree", func(q vec.Point) []vec.Neighbor {
				res, err := xt.KNN(sto.NewSession(), q, 3)
				if err != nil {
					t.Fatal(err)
				}
				return res
			})
		}
		{
			sto := store.NewSim(cfg.Disk)
			va, err := vafile.Build(sto, db, vafile.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			check("vafile", func(q vec.Point) []vec.Neighbor {
				res, err := va.KNN(sto.NewSession(), q, 3)
				if err != nil {
					t.Fatal(err)
				}
				return res
			})
		}
	}
}

func TestRunProducesResultsForAllMethods(t *testing.T) {
	cfg := Config{Dataset: dataset.Uniform, Seed: 1, N: 3000, Dim: 8, Queries: 5}
	methods := []Method{IQTree, IQNoQuant, IQNoOptIO, IQPlain, XTree, VAFile, Scan}
	results, err := Run(cfg, methods)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(methods) {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if r.Seconds <= 0 {
			t.Fatalf("%s: non-positive time %f", r.Method, r.Seconds)
		}
		if r.Stats.BlocksRead == 0 {
			t.Fatalf("%s: no blocks read", r.Method)
		}
	}
}

func TestRunUnknownMethod(t *testing.T) {
	cfg := Config{Dataset: dataset.Uniform, Seed: 1, N: 1000, Dim: 4, Queries: 2}
	if _, err := Run(cfg, []Method{"nonsense"}); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestTuneVAFilePicksACandidate(t *testing.T) {
	cfg := Config{Dataset: dataset.Uniform, Seed: 2, N: 2000, Dim: 8, Queries: 5, VABits: []int{2, 6}}
	cfg = cfg.withDefaults()
	db, qs, _ := cfg.data()
	bits, err := TuneVAFile(cfg, db, qs, false)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 2 && bits != 6 {
		t.Fatalf("tuned bits %d not among candidates", bits)
	}
}

func TestFigureFormatAndCSV(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "test", XLabel: "n",
		Series: []Series{
			{Label: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Label: "B", X: []float64{1, 2}, Y: []float64{1.5, 1.25}},
		},
	}
	txt := fig.Format()
	for _, want := range []string{"figX", "A", "B", "0.5000", "1.2500"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("format output missing %q:\n%s", want, txt)
		}
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "figX,1,A,0.5") || !strings.Contains(csv, "figX,2,B,1.25") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

// TestFigureShapes runs tiny versions of the headline figures and asserts
// the qualitative results the paper reports.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shapes are slow")
	}
	opts := RunOpts{Scale: 0.016, Queries: 10, Seed: 7}

	// Fig. 8 at d=16: X-tree degenerates below the scan; the IQ-tree beats
	// both.
	cfg := Config{Dataset: dataset.Uniform, Seed: 7, N: 8000, Dim: 16, Queries: 10}
	res, err := Run(cfg, []Method{IQTree, XTree, Scan})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[Method]float64{}
	for _, r := range res {
		byMethod[r.Method] = r.Seconds
	}
	if byMethod[XTree] < byMethod[Scan] {
		t.Errorf("d=16: X-tree (%f) should be worse than scan (%f)", byMethod[XTree], byMethod[Scan])
	}
	if byMethod[IQTree] > byMethod[Scan] {
		t.Errorf("d=16: IQ-tree (%f) should beat the scan (%f)", byMethod[IQTree], byMethod[Scan])
	}

	// Fig. 7 ablation at d=14: the optimized NN search must help the
	// quantized tree.
	fig7, err := Figure7(RunOpts{Scale: opts.Scale, Queries: opts.Queries, Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range fig7.Series {
		series[s.Label] = s.Y
	}
	full := series[string(IQTree)]
	noOpt := series[string(IQNoOptIO)]
	last := len(full) - 1
	if full[last] > noOpt[last] {
		t.Errorf("optimized I/O should win at high d: %f vs %f", full[last], noOpt[last])
	}
}

func TestChartRendering(t *testing.T) {
	fig := Figure{
		ID: "c", Title: "chart", XLabel: "n",
		Series: []Series{
			{Label: "A", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.4}},
			{Label: "B", X: []float64{1, 2, 3}, Y: []float64{0.4, 0.2, 0.1}},
		},
	}
	for _, logY := range []bool{false, true} {
		out := fig.Chart(logY)
		for _, want := range []string{"c — chart", "*", "x", "A", "B", "(n)"} {
			if !strings.Contains(out, want) {
				t.Fatalf("chart (log=%v) missing %q:\n%s", logY, want, out)
			}
		}
	}
	if out := (Figure{ID: "e"}).Chart(false); !strings.Contains(out, "empty") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestAblationRunnersSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	o := RunOpts{Scale: 0.01, Queries: 5, Seed: 3,
		Config: Config{VABits: []int{3, 6}}}
	for name, fn := range map[string]func(RunOpts) (Figure, error){
		"va-bits":    AblationVABits,
		"cost-model": AblationCostModel,
		"knn":        AblationKNN,
	} {
		fig, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fig.Series) == 0 || len(fig.Series[0].Y) == 0 {
			t.Fatalf("%s: empty figure", name)
		}
		for _, s := range fig.Series {
			for i, y := range s.Y {
				if y <= 0 {
					t.Fatalf("%s %s[%d]: non-positive time", name, s.Label, i)
				}
			}
		}
	}
}
