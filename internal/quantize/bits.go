package quantize

import (
	"fmt"

	"repro/internal/vec"
)

// BitWriter packs unsigned integers of arbitrary width (≤ 32 bits) into a
// byte slice, LSB-first within each byte. It is the codec for quantized
// data pages.
type BitWriter struct {
	buf  []byte
	nbit int // total bits written
}

// NewBitWriter returns a writer with capacity hint of n bits.
func NewBitWriter(nbits int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, (nbits+7)/8)}
}

// Write appends the low `width` bits of v to the stream.
func (w *BitWriter) Write(v uint32, width int) {
	if width < 0 || width > 32 {
		panic(fmt.Sprintf("quantize: bit width %d out of range", width))
	}
	for i := 0; i < width; i++ {
		byteIdx := w.nbit / 8
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[byteIdx] |= 1 << uint(w.nbit%8)
		}
		w.nbit++
	}
}

// Bytes returns the packed stream. The final partial byte is zero-padded.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Bits returns the number of bits written.
func (w *BitWriter) Bits() int { return w.nbit }

// BitReader unpacks a stream produced by BitWriter.
type BitReader struct {
	buf  []byte
	nbit int
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader {
	return &BitReader{buf: buf}
}

// Read extracts the next `width` bits as an unsigned integer.
func (r *BitReader) Read(width int) uint32 {
	if width < 0 || width > 32 {
		panic(fmt.Sprintf("quantize: bit width %d out of range", width))
	}
	if width == 0 {
		return 0
	}
	byteIdx := r.nbit / 8
	shift := uint(r.nbit % 8)
	// Fast path: load a 64-bit window (shift + width ≤ 40 < 64 always).
	if byteIdx+8 <= len(r.buf) {
		w := uint64(r.buf[byteIdx]) | uint64(r.buf[byteIdx+1])<<8 |
			uint64(r.buf[byteIdx+2])<<16 | uint64(r.buf[byteIdx+3])<<24 |
			uint64(r.buf[byteIdx+4])<<32 | uint64(r.buf[byteIdx+5])<<40 |
			uint64(r.buf[byteIdx+6])<<48 | uint64(r.buf[byteIdx+7])<<56
		r.nbit += width
		mask := uint32(1)<<uint(width) - 1 // width = 32 wraps to all-ones
		return uint32(w>>shift) & mask
	}
	// Slow path near the end of the buffer.
	var v uint32
	for i := 0; i < width; i++ {
		bi := r.nbit / 8
		if bi >= len(r.buf) {
			panic("quantize: bit stream exhausted")
		}
		if r.buf[bi]&(1<<uint(r.nbit%8)) != 0 {
			v |= 1 << uint(i)
		}
		r.nbit++
	}
	return v
}

// Seek positions the reader at an absolute bit offset.
func (r *BitReader) Seek(bitOff int) {
	if bitOff < 0 || bitOff > len(r.buf)*8 {
		panic("quantize: seek out of range")
	}
	r.nbit = bitOff
}

// PackedSize returns the number of bytes needed to pack n points of
// dimensionality d at `bits` bits per dimension.
func PackedSize(n, d, bits int) int {
	total := n * d * bits
	return (total + 7) / 8
}

// Pack encodes points into a bit-packed approximation stream using grid g.
func Pack(g Grid, pts []vec.Point) []byte {
	w := NewBitWriter(len(pts) * g.Dim() * g.Bits)
	cells := make([]uint32, g.Dim())
	for _, p := range pts {
		cells = g.Encode(p, cells)
		for _, c := range cells {
			w.Write(c, g.Bits)
		}
	}
	return w.Bytes()
}

// Unpack decodes n points' cell indices from a stream produced by Pack.
// The result is a flat slice of n·d cell indices (point-major).
func Unpack(g Grid, data []byte, n int) []uint32 {
	r := NewBitReader(data)
	d := g.Dim()
	out := make([]uint32, n*d)
	for i := range out {
		out[i] = r.Read(g.Bits)
	}
	return out
}
