// Package quantize implements the grid quantization at the heart of
// independent quantization: points are approximated by the cells of a
// virtual grid that divides the page MBR into 2^g partitions per dimension
// (paper Section 3.1). Quantization is always *relative to the page MBR* —
// that is what lets the IQ-tree spend fewer bits than the VA-file for the
// same accuracy.
//
// The special level g=32 stores exact float32 coordinates instead of cell
// indices, so a 32-bit page needs no third-level exact page.
package quantize

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// ExactBits is the quantization level at which coordinates are stored
// exactly (raw float32 bit patterns rather than grid cells).
const ExactBits = 32

// Levels is the ladder of quantization levels of the split tree: each
// median split of a partition doubles the bits per dimension affordable in
// a fixed-size page.
var Levels = []int{1, 2, 4, 8, 16, 32}

// Grid quantizes points relative to an MBR with Bits bits per dimension.
type Grid struct {
	MBR  vec.MBR
	Bits int // 1..32; 32 means exact float32 storage
}

// NewGrid returns a Grid over mbr with the given bits per dimension.
// It panics on bits outside [1, 32].
func NewGrid(mbr vec.MBR, bits int) Grid {
	if bits < 1 || bits > ExactBits {
		panic(fmt.Sprintf("quantize: bits %d out of range [1,32]", bits))
	}
	return Grid{MBR: mbr, Bits: bits}
}

// Dim returns the dimensionality of the grid.
func (g Grid) Dim() int { return g.MBR.Dim() }

// Cells returns the number of grid cells per dimension, 2^Bits.
func (g Grid) Cells() uint64 {
	if g.Bits >= 64 {
		panic("quantize: bits too large")
	}
	return uint64(1) << uint(g.Bits)
}

// Exact reports whether the grid stores exact coordinates (g = 32).
func (g Grid) Exact() bool { return g.Bits == ExactBits }

// Encode writes the cell indices of p into dst (allocating if dst is nil
// or too short) and returns it. For an exact grid the "cells" are the raw
// float32 bit patterns.
func (g Grid) Encode(p vec.Point, dst []uint32) []uint32 {
	d := g.Dim()
	if len(p) != d {
		panic(fmt.Sprintf("quantize: dimension mismatch %d != %d", len(p), d))
	}
	if cap(dst) < d {
		dst = make([]uint32, d)
	}
	dst = dst[:d]
	if g.Exact() {
		for i, v := range p {
			dst[i] = math.Float32bits(v)
		}
		return dst
	}
	cells := float64(int64(1) << uint(g.Bits))
	maxCell := uint32(cells) - 1
	for i, v := range p {
		lo := float64(g.MBR.Lo[i])
		side := float64(g.MBR.Hi[i]) - lo
		if side <= 0 {
			dst[i] = 0
			continue
		}
		c := math.Floor((float64(v) - lo) / side * cells)
		switch {
		case c < 0:
			dst[i] = 0
		case c > float64(maxCell):
			dst[i] = maxCell
		default:
			dst[i] = uint32(c)
		}
	}
	return dst
}

// CellBounds returns the lower and upper coordinate of cell c along
// dimension i. For an exact grid both equal the stored coordinate.
func (g Grid) CellBounds(i int, c uint32) (lo, hi float64) {
	if g.Exact() {
		v := float64(math.Float32frombits(c))
		return v, v
	}
	l := float64(g.MBR.Lo[i])
	side := float64(g.MBR.Hi[i]) - l
	if side <= 0 {
		return l, l
	}
	cells := float64(int64(1) << uint(g.Bits))
	w := side / cells
	lo = l + float64(c)*w
	hi = lo + w
	return lo, hi
}

// CellBox returns the box approximation of the point with cell indices
// cells. The true point is guaranteed to lie inside this box.
func (g Grid) CellBox(cells []uint32) vec.MBR {
	d := g.Dim()
	box := vec.MBR{Lo: make(vec.Point, d), Hi: make(vec.Point, d)}
	for i := 0; i < d; i++ {
		lo, hi := g.CellBounds(i, cells[i])
		box.Lo[i] = float32(lo)
		box.Hi[i] = float32(hi)
	}
	return box
}

// MinDist returns the minimum distance from q to the box approximation of
// the encoded point, without allocating.
func (g Grid) MinDist(q vec.Point, cells []uint32, met vec.Metric) float64 {
	switch met {
	case vec.Euclidean:
		var s float64
		for i, v := range q {
			lo, hi := g.CellBounds(i, cells[i])
			dd := axisDist(float64(v), lo, hi)
			s += dd * dd
		}
		return math.Sqrt(s)
	case vec.Maximum:
		var s float64
		for i, v := range q {
			lo, hi := g.CellBounds(i, cells[i])
			if dd := axisDist(float64(v), lo, hi); dd > s {
				s = dd
			}
		}
		return s
	case vec.Manhattan:
		var s float64
		for i, v := range q {
			lo, hi := g.CellBounds(i, cells[i])
			s += axisDist(float64(v), lo, hi)
		}
		return s
	default:
		panic("quantize: unknown metric")
	}
}

// MaxDist returns the maximum distance from q to the box approximation of
// the encoded point (the upper bound used to prune candidates).
func (g Grid) MaxDist(q vec.Point, cells []uint32, met vec.Metric) float64 {
	switch met {
	case vec.Euclidean:
		var s float64
		for i, v := range q {
			lo, hi := g.CellBounds(i, cells[i])
			dd := axisFar(float64(v), lo, hi)
			s += dd * dd
		}
		return math.Sqrt(s)
	case vec.Maximum:
		var s float64
		for i, v := range q {
			lo, hi := g.CellBounds(i, cells[i])
			if dd := axisFar(float64(v), lo, hi); dd > s {
				s = dd
			}
		}
		return s
	case vec.Manhattan:
		var s float64
		for i, v := range q {
			lo, hi := g.CellBounds(i, cells[i])
			s += axisFar(float64(v), lo, hi)
		}
		return s
	default:
		panic("quantize: unknown metric")
	}
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

func axisFar(v, lo, hi float64) float64 {
	return math.Max(math.Abs(v-lo), math.Abs(v-hi))
}
