package quantize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func randMBR(r *rand.Rand, d int) vec.MBR {
	lo := make(vec.Point, d)
	hi := make(vec.Point, d)
	for i := 0; i < d; i++ {
		a := float32(r.NormFloat64())
		b := a + float32(r.Float64()) + 0.01
		lo[i], hi[i] = a, b
	}
	return vec.MBR{Lo: lo, Hi: hi}
}

func randPointIn(r *rand.Rand, m vec.MBR) vec.Point {
	p := make(vec.Point, m.Dim())
	for i := range p {
		p[i] = m.Lo[i] + float32(r.Float64())*(m.Hi[i]-m.Lo[i])
	}
	return p
}

// Property: a point always lies inside the box of its own cell, for every
// quantization level.
func TestEncodeCellBoxContainment(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(10)
		m := randMBR(r, d)
		for _, bits := range Levels {
			g := NewGrid(m, bits)
			p := randPointIn(r, m)
			cells := g.Encode(p, nil)
			box := g.CellBox(cells)
			for i := 0; i < d; i++ {
				// Allow one float32 ulp of slack at the cell edges.
				if float64(p[i]) < float64(box.Lo[i])-1e-5 || float64(p[i]) > float64(box.Hi[i])+1e-5 {
					t.Fatalf("bits=%d dim %d: point %v outside cell box [%v, %v]",
						bits, i, p[i], box.Lo[i], box.Hi[i])
				}
			}
		}
	}
}

// Property: cell-based lower/upper distance bounds bracket the true
// distance for every metric and level.
func TestMinMaxDistBracketTrueDistance(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(8)
		m := randMBR(r, d)
		bits := Levels[r.Intn(len(Levels))]
		g := NewGrid(m, bits)
		p := randPointIn(r, m)
		q := randPointIn(r, m)
		cells := g.Encode(p, nil)
		for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum, vec.Manhattan} {
			lb := g.MinDist(q, cells, met)
			ub := g.MaxDist(q, cells, met)
			truth := met.Dist(q, p)
			if truth < lb-1e-4 || truth > ub+1e-4 {
				t.Fatalf("bits=%d %v: dist %f outside [%f, %f]", bits, met, truth, lb, ub)
			}
		}
	}
}

func TestExactGridRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := randMBR(r, 5)
	g := NewGrid(m, ExactBits)
	if !g.Exact() {
		t.Fatal("32-bit grid should be exact")
	}
	p := randPointIn(r, m)
	cells := g.Encode(p, nil)
	box := g.CellBox(cells)
	for i := range p {
		if box.Lo[i] != p[i] || box.Hi[i] != p[i] {
			t.Fatalf("exact cell box not degenerate at the point: %v vs %v", box, p)
		}
	}
	if d := g.MinDist(p, cells, vec.Euclidean); d != 0 {
		t.Fatalf("exact MinDist from the point itself = %f", d)
	}
}

func TestEncodeClampsOutOfRangePoints(t *testing.T) {
	m := vec.MBR{Lo: vec.Point{0}, Hi: vec.Point{1}}
	g := NewGrid(m, 4)
	below := g.Encode(vec.Point{-5}, nil)
	above := g.Encode(vec.Point{7}, nil)
	if below[0] != 0 {
		t.Fatalf("below-range cell %d, want 0", below[0])
	}
	if above[0] != 15 {
		t.Fatalf("above-range cell %d, want 15", above[0])
	}
}

func TestDegenerateDimension(t *testing.T) {
	m := vec.MBR{Lo: vec.Point{1, 0}, Hi: vec.Point{1, 1}} // dim 0 is flat
	g := NewGrid(m, 4)
	cells := g.Encode(vec.Point{1, 0.5}, nil)
	if cells[0] != 0 {
		t.Fatalf("degenerate dim cell %d", cells[0])
	}
	lo, hi := g.CellBounds(0, 0)
	if lo != 1 || hi != 1 {
		t.Fatalf("degenerate cell bounds [%f, %f]", lo, hi)
	}
}

func TestNewGridPanicsOnBadBits(t *testing.T) {
	m := vec.MBR{Lo: vec.Point{0}, Hi: vec.Point{1}}
	for _, bad := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewGrid(bits=%d) did not panic", bad)
				}
			}()
			NewGrid(m, bad)
		}()
	}
}

func TestGridCells(t *testing.T) {
	m := vec.MBR{Lo: vec.Point{0}, Hi: vec.Point{1}}
	if NewGrid(m, 4).Cells() != 16 {
		t.Fatal("4-bit grid should have 16 cells")
	}
	if NewGrid(m, 1).Cells() != 2 {
		t.Fatal("1-bit grid should have 2 cells")
	}
}

// Property: BitWriter/BitReader roundtrip arbitrary values at arbitrary
// widths.
func TestBitRoundtripQuick(t *testing.T) {
	f := func(vals []uint32, widthSeed uint8) bool {
		width := 1 + int(widthSeed)%32
		mask := uint32(1)<<uint(width) - 1
		w := NewBitWriter(len(vals) * width)
		for _, v := range vals {
			w.Write(v&mask, width)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			if r.Read(width) != v&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitMixedWidths(t *testing.T) {
	w := NewBitWriter(0)
	w.Write(1, 1)
	w.Write(5, 3)
	w.Write(200, 8)
	w.Write(0xdeadbeef, 32)
	w.Write(3, 2)
	if w.Bits() != 46 {
		t.Fatalf("bits written %d", w.Bits())
	}
	r := NewBitReader(w.Bytes())
	for _, c := range []struct {
		width int
		want  uint32
	}{{1, 1}, {3, 5}, {8, 200}, {32, 0xdeadbeef}, {2, 3}} {
		if got := r.Read(c.width); got != c.want {
			t.Fatalf("read %d-bit value %d, want %d", c.width, got, c.want)
		}
	}
}

func TestBitReaderSeek(t *testing.T) {
	w := NewBitWriter(0)
	for i := uint32(0); i < 16; i++ {
		w.Write(i, 4)
	}
	r := NewBitReader(w.Bytes())
	r.Seek(4 * 7)
	if got := r.Read(4); got != 7 {
		t.Fatalf("after seek read %d, want 7", got)
	}
}

func TestPackUnpack(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := randMBR(r, 6)
	for _, bits := range []int{1, 2, 4, 8, 16} {
		g := NewGrid(m, bits)
		pts := make([]vec.Point, 33)
		for i := range pts {
			pts[i] = randPointIn(r, m)
		}
		data := Pack(g, pts)
		if len(data) != PackedSize(len(pts), 6, bits) {
			t.Fatalf("bits=%d packed size %d, want %d", bits, len(data), PackedSize(len(pts), 6, bits))
		}
		cells := Unpack(g, data, len(pts))
		for i, p := range pts {
			want := g.Encode(p, nil)
			for j := 0; j < 6; j++ {
				if cells[i*6+j] != want[j] {
					t.Fatalf("bits=%d point %d dim %d: %d != %d", bits, i, j, cells[i*6+j], want[j])
				}
			}
		}
	}
}

func TestLevelsLadder(t *testing.T) {
	want := []int{1, 2, 4, 8, 16, 32}
	if len(Levels) != len(want) {
		t.Fatal("levels ladder changed")
	}
	for i := range want {
		if Levels[i] != want[i] {
			t.Fatalf("Levels[%d] = %d", i, Levels[i])
		}
	}
	// The number of full solutions of a depth-5 split tree must match the
	// paper's 458,330 (Section 3.5): f(h) = 1 + f(h-1)².
	f := 1.0
	for i := 0; i < len(Levels)-1; i++ {
		f = 1 + f*f
	}
	if math.Abs(f-458330) > 0.5 {
		t.Fatalf("split-tree solution count %f, want 458330", f)
	}
}
