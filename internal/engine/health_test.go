package engine

import (
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// TestEngineHealthSnapshot pins the readiness surface routing layers
// (internal/shard) depend on: a fresh engine is Ready with its counters
// at zero, served and failed queries move the counters, and Close flips
// the snapshot to not-Ready permanently.
func TestEngineHealthSnapshot(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	calls := 0
	idx := &stubIndex{fn: func(s *store.Session) {
		calls++
		if calls == 1 {
			panic("first query dies")
		}
	}}
	e := New(sto, idx, 3)

	h := e.Health()
	if !h.Ready() || h.Closed || h.Sharing {
		t.Fatalf("fresh engine health %+v", h)
	}
	if h.Workers != 3 {
		t.Fatalf("health workers = %d, want 3", h.Workers)
	}
	if h.Queries != 0 || h.Failures != 0 || h.Panics != 0 {
		t.Fatalf("fresh engine counted work: %+v", h)
	}

	bad := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
	if bad.Err == nil {
		t.Fatal("panicking query should fail")
	}
	good := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
	if good.Err != nil {
		t.Fatalf("second query: %v", good.Err)
	}
	h = e.Health()
	if h.Queries != 2 || h.Failures != 1 || h.Panics != 1 {
		t.Fatalf("after one panic and one success: %+v", h)
	}
	if !h.Ready() {
		t.Fatal("engine with failures must still be Ready: failures are not closure")
	}

	e.Close()
	h = e.Health()
	if h.Ready() || !h.Closed {
		t.Fatalf("closed engine health %+v", h)
	}
}
