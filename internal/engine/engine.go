// Package engine is the parallel serving layer: a fixed pool of workers
// drains a query queue against one index.Index, each worker reusing a
// pooled store.Session (Reset between queries) so steady-state serving
// allocates no per-query session state.
//
// Concurrency contract: the access methods publish copy-on-write
// snapshots (see internal/core), so workers never block updaters and
// every query observes one consistent snapshot. The engine measures both
// wall-clock and simulated time per query; on the simulated disk the
// interesting throughput number is simulated QPS — queries divided by
// the makespan, the largest per-worker sum of simulated busy seconds —
// which models N independent disks serving the shared queue.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// ErrClosed is returned for queries submitted after Close.
var ErrClosed = errors.New("engine: closed")

// ErrOverloaded is returned when the bounded queue stays full past the
// engine's queue wait: the engine sheds the query instead of letting
// callers pile up behind a saturated pool (see WithQueueWait).
var ErrOverloaded = errors.New("engine: overloaded, query shed")

// ErrCanceled marks a query abandoned because its context was done —
// either while waiting for queue space or at a page-fetch boundary
// inside the index. It aliases store.ErrCanceled so errors.Is works
// across the layers.
var ErrCanceled = store.ErrCanceled

// ErrInvalidQuery marks a query rejected at submission because its shape
// cannot be executed (nil point, non-positive k, inverted window, or an
// unknown kind). The query never reaches the pool.
var ErrInvalidQuery = errors.New("engine: invalid query")

// ErrPanicked marks a query whose index execution panicked. The panic is
// contained — neither a worker nor the sharing coordinator dies — and
// surfaces typed so routing layers (internal/shard) can classify it as a
// replica-local fault and retry a sibling replica.
var ErrPanicked = errors.New("engine: query panicked")

// ErrTooManyRestarts marks a shared-scan query abandoned because index
// reorganizations invalidated its cursor more than maxSharedRestarts
// times — progress insurance against a writer that reorganizes faster
// than queries complete. It wraps index.ErrStaleScan in the returned
// error chain, so both errors.Is checks hold.
var ErrTooManyRestarts = errors.New("engine: shared scan restarted too many times")

// Kind selects the query type of a Query.
type Kind int

const (
	KNN Kind = iota
	Range
	Window
)

// Query is one unit of work for the engine.
type Query struct {
	Kind   Kind
	Point  vec.Point // KNN and Range center
	K      int       // KNN result count
	Eps    float64   // Range radius
	Window vec.MBR   // Window bounds
	Trace  bool      // collect a per-query plan trace (costs extra allocation)

	// MinRecall and MaxCost arm approximate KNN execution (KNN-only; at
	// most one may be set, and both are "unset" at zero). MinRecall ∈
	// (0,1] is the target expected recall: the index stops fetching pages
	// once the modeled probability that any unfetched page still improves
	// the top-k drops below ε = 1 − MinRecall. MinRecall = 1 is armed but
	// bit-identical to exact execution. MaxCost > 0 is a hard budget on
	// quantized pages transferred (checked at fetch boundaries, so a
	// batched read may overshoot by its over-read tail). On indexes
	// without approximate support the query runs exact.
	MinRecall float64
	MaxCost   int

	// Ctx, when non-nil, bounds the query: a done context fails the
	// query with an error wrapping ErrCanceled — checked while waiting
	// for queue space and again at every page-fetch boundary inside the
	// index, so a canceled query stops paying I/O promptly.
	Ctx context.Context
}

// Validate checks the query's shape, returning an error wrapping
// ErrInvalidQuery for queries that cannot be executed. Submission
// validates every query, so malformed work fails typed at the door
// instead of surfacing as an index panic or a silent empty result.
func (q Query) Validate() error {
	if q.MinRecall < 0 || q.MinRecall > 1 || q.MinRecall != q.MinRecall {
		return fmt.Errorf("%w: min recall %v outside [0, 1]", ErrInvalidQuery, q.MinRecall)
	}
	if q.MaxCost < 0 {
		return fmt.Errorf("%w: negative max cost %d", ErrInvalidQuery, q.MaxCost)
	}
	if q.MinRecall > 0 && q.MaxCost > 0 {
		return fmt.Errorf("%w: min recall and max cost are mutually exclusive", ErrInvalidQuery)
	}
	if q.Kind != KNN && (q.MinRecall > 0 || q.MaxCost > 0) {
		return fmt.Errorf("%w: approximate knobs on a %s query", ErrInvalidQuery, q.Kind)
	}
	switch q.Kind {
	case KNN:
		if q.Point == nil {
			return fmt.Errorf("%w: knn with nil point", ErrInvalidQuery)
		}
		if q.K <= 0 {
			return fmt.Errorf("%w: knn with k=%d", ErrInvalidQuery, q.K)
		}
	case Range:
		if q.Point == nil {
			return fmt.Errorf("%w: range with nil point", ErrInvalidQuery)
		}
		if q.Eps < 0 || q.Eps != q.Eps {
			return fmt.Errorf("%w: range with eps=%v", ErrInvalidQuery, q.Eps)
		}
	case Window:
		w := q.Window
		if len(w.Lo) == 0 || len(w.Lo) != len(w.Hi) {
			return fmt.Errorf("%w: window with %d/%d bounds", ErrInvalidQuery, len(w.Lo), len(w.Hi))
		}
		for i := range w.Lo {
			if w.Lo[i] > w.Hi[i] {
				return fmt.Errorf("%w: window inverted in dim %d", ErrInvalidQuery, i)
			}
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrInvalidQuery, int(q.Kind))
	}
	return nil
}

// approx returns the query's approximate-execution knob in index form.
func (q Query) approx() index.Approx {
	return index.Approx{MinRecall: q.MinRecall, MaxCost: q.MaxCost}
}

// Result is the outcome of one Query.
type Result struct {
	Neighbors []vec.Neighbor
	Err       error
	Stats     store.Stats     // the query's simulated charges
	SimTime   float64         // simulated seconds (Stats under the store config)
	Wall      time.Duration   // wall-clock execution time on the worker
	Trace     *obs.QueryTrace // non-nil iff Query.Trace was set
}

// Engine is a worker-pool query executor over one index. Submit and
// SubmitBatch are safe for concurrent use from any number of goroutines;
// Close drains in-flight queries and stops the workers.
type Engine struct {
	sto       *store.Store
	idx       index.Index
	workers   int
	queueWait time.Duration // max wait for queue space; negative = forever

	queue    chan job
	sessions sync.Pool
	wg       sync.WaitGroup

	// closeMu orders Submit against Close: enqueue holds the read lock
	// from the closed check through the channel send, and Close flips
	// closed under the write lock before closing the channel, so a send
	// on the closed channel is impossible — any enqueue that observed
	// closed=false finishes its send before Close can proceed.
	closeMu sync.RWMutex
	closed  atomic.Bool
	// closing flips before Close takes the write lock, so a health poll
	// never reports a replica ready while Close is already committed but
	// still blocked behind in-flight enqueues or the drain (the write
	// lock can be held out for up to the queue wait). Both flags are
	// atomics read outside closeMu: Health must stay non-blocking while
	// a closer waits out a slow enqueue, and enqueues racing Close fail
	// fast with ErrClosed instead of stalling behind the pending writer.
	closing atomic.Bool

	busyMu sync.Mutex
	busy   []float64 // per-lane summed simulated busy seconds

	// Scan-sharing mode (see shared.go): one coordinator goroutine
	// replaces the worker pool, multiplexing up to shareWindow in-flight
	// queries over cross-query batched page fetches. busy then models
	// workers parallel lanes fed round-robin, keeping Makespan comparable
	// across modes.
	sharing     bool
	shareWindow int
	maxRestarts int
	scan        index.SharedScan

	// Write path (see write.go): one writer goroutine drains a dedicated
	// queue, coalescing insert bursts into batch applications.
	writesOn   bool
	mut        Mutator
	writeQueue chan writeJob

	reg        *obs.Registry
	queueDepth *obs.Gauge
	queries    *obs.Counter
	failures   *obs.Counter
	panics     *obs.Counter
	sheds      *obs.Counter
	cancels    *obs.Counter
	approxQs   *obs.Counter
	simLat     *obs.Histogram
	wallLat    *obs.Histogram

	sharedRounds    *obs.Counter
	sharedFetched   *obs.Counter
	sharedServes    *obs.Counter
	sharedRestarts  *obs.Counter
	sharedExhausted *obs.Counter

	writeQueueDepth *obs.Gauge
	writeCount      *obs.Counter
	writeBatches    *obs.Counter
	writeFailures   *obs.Counter
}

type job struct {
	q    Query
	res  *Result
	done *sync.WaitGroup
}

// Option customizes engine construction.
type Option func(*Engine)

// WithRegistry points the engine's metrics (engine.* names) at reg
// instead of a private registry — inject the process registry to fold
// serving metrics into one snapshot.
func WithRegistry(reg *obs.Registry) Option {
	return func(e *Engine) { e.reg = reg }
}

// WithQueueWait bounds how long a submission waits for space in the
// full queue before the engine sheds it with ErrOverloaded. Zero sheds
// immediately when the queue is full; a negative duration restores the
// historical block-forever behavior. The default is one second —
// far beyond any healthy queue dwell time for microsecond-scale
// queries, so only a genuinely wedged or saturated pool sheds.
func WithQueueWait(d time.Duration) Option {
	return func(e *Engine) { e.queueWait = d }
}

// WithScanSharing switches the engine to the shared multi-query
// pipeline: a coordinator steps every in-flight query to its page-fetch
// boundary, merges the wanted pages across queries into one deduplicated
// read plan per round, and fans each fetched page out to all queries
// that need it. Requires the index to implement index.SharedScanner;
// other indexes are served share-nothing regardless of this option.
// Results are identical to share-nothing execution.
func WithScanSharing() Option {
	return func(e *Engine) { e.sharing = true }
}

// WithShareWindow caps how many queries the scan-sharing coordinator
// keeps in flight at once — the fairness/latency knob: a larger window
// exposes more cross-query page overlap (higher aggregate throughput), a
// smaller one bounds how much co-scheduled work can delay any single
// query. Defaults to 4× the worker count. Only meaningful with
// WithScanSharing.
func WithShareWindow(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.shareWindow = n
		}
	}
}

// New starts an engine with the given number of workers serving queries
// against idx, charging simulated costs to sessions of sto.
func New(sto *store.Store, idx index.Index, workers int, opts ...Option) *Engine {
	if workers <= 0 {
		panic(fmt.Sprintf("engine: workers must be positive, got %d", workers))
	}
	e := &Engine{
		sto:         sto,
		idx:         idx,
		workers:     workers,
		queueWait:   time.Second,
		queue:       make(chan job, 4*workers),
		busy:        make([]float64, workers),
		maxRestarts: maxSharedRestarts,
	}
	for _, o := range opts {
		o(e)
	}
	if e.reg == nil {
		e.reg = &obs.Registry{}
	}
	e.queueDepth = e.reg.Gauge("engine.queue_depth")
	e.queries = e.reg.Counter("engine.queries")
	e.failures = e.reg.Counter("engine.failures")
	e.panics = e.reg.Counter("engine.panics")
	e.sheds = e.reg.Counter("engine.sheds")
	e.cancels = e.reg.Counter("engine.cancellations")
	e.approxQs = e.reg.Counter("engine.approx.queries")
	e.simLat = e.reg.Histogram("engine.sim_latency_seconds")
	e.wallLat = e.reg.Histogram("engine.wall_latency_seconds")
	e.sessions.New = func() any { return sto.NewSession() }
	if e.writesOn {
		if m, ok := idx.(Mutator); ok {
			e.mut = m
		}
	}
	if e.mut != nil {
		e.writeQueue = make(chan writeJob, 4*workers)
		e.writeQueueDepth = e.reg.Gauge("engine.write_queue_depth")
		e.writeCount = e.reg.Counter("engine.writes")
		e.writeBatches = e.reg.Counter("engine.write_batches")
		e.writeFailures = e.reg.Counter("engine.write_failures")
		e.wg.Add(1)
		go e.writer()
	}
	if e.sharing {
		if ss, ok := idx.(index.SharedScanner); ok {
			e.scan = ss.NewSharedScan()
		}
	}
	if e.scan != nil {
		if e.shareWindow <= 0 {
			e.shareWindow = 4 * workers
		}
		e.sharedRounds = e.reg.Counter("engine.shared.rounds")
		e.sharedFetched = e.reg.Counter("engine.shared.pages_fetched")
		e.sharedServes = e.reg.Counter("engine.shared.page_serves")
		e.sharedRestarts = e.reg.Counter("engine.shared.restarts")
		e.sharedExhausted = e.reg.Counter("engine.shared.restarts_exhausted")
		e.wg.Add(1)
		go e.coordinator()
		return e
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker(i)
	}
	return e
}

// Sharing reports whether the engine actually runs the scan-sharing
// pipeline (the option was set and the index supports it).
func (e *Engine) Sharing() bool { return e.scan != nil }

// Health is a point-in-time readiness snapshot of one engine, cheap
// enough for a routing layer (internal/shard) to poll per decision: a
// closed engine can never serve again, a deep queue signals saturation,
// and the failure counters distinguish a replica that answers from one
// that answers badly.
type Health struct {
	Closed     bool  // Close was called; every submission fails ErrClosed
	Closing    bool  // Close has started (set before the drain begins)
	Sharing    bool  // scan-sharing coordinator instead of the worker pool
	Workers    int   // pool size (parallel lanes in sharing mode)
	QueueDepth int64 // jobs currently queued or waiting for queue space
	Queries    int64 // completed queries
	Failures   int64 // completed queries that carried an error
	Panics     int64 // contained index panics
	Sheds      int64 // queries shed with ErrOverloaded
	Cancels    int64 // queries abandoned via context cancellation
}

// Ready reports whether the engine can accept queries at all. A ready
// engine may still shed under load; Closed (and its precursor Closing —
// Close never un-happens) are the only permanent states.
func (h Health) Ready() bool { return !h.Closed && !h.Closing }

// Health returns the engine's current readiness snapshot. The counter
// fields are individually consistent atomic reads, not one cut across
// all of them — routing decisions tolerate that.
func (e *Engine) Health() Health {
	// Both flags are read outside closeMu on purpose: a health poll must
	// not block (or report stale readiness) while Close waits for the
	// write lock behind a slow enqueue's read lock.
	return Health{
		Closed:     e.closed.Load(),
		Closing:    e.closing.Load(),
		Sharing:    e.Sharing(),
		Workers:    e.workers,
		QueueDepth: e.queueDepth.Value(),
		Queries:    e.queries.Value(),
		Failures:   e.failures.Value(),
		Panics:     e.panics.Value(),
		Sheds:      e.sheds.Value(),
		Cancels:    e.cancels.Value(),
	}
}

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return e.workers }

// Registry returns the registry carrying the engine's metrics.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Submit executes one query and blocks until its result is ready. A
// query that never reaches the pool fails typed: ErrClosed after Close,
// ErrOverloaded when the queue stays full past the queue wait, or an
// error wrapping ErrCanceled when its context is done.
func (e *Engine) Submit(q Query) Result {
	var res Result
	var done sync.WaitGroup
	if err := e.enqueue(job{q: q, res: &res, done: &done}); err != nil {
		return Result{Err: err}
	}
	done.Wait()
	return res
}

// SubmitBatch executes all queries on the worker pool and blocks until
// every result is ready. Results are returned in query order regardless
// of completion order, so downstream aggregation is deterministic.
// Individual queries that cannot be enqueued carry their typed error
// (ErrClosed, ErrOverloaded, ErrCanceled) in their Result slot.
func (e *Engine) SubmitBatch(qs []Query) []Result {
	results := make([]Result, len(qs))
	var done sync.WaitGroup
	for i := range qs {
		if err := e.enqueue(job{q: qs[i], res: &results[i], done: &done}); err != nil {
			results[i].Err = err
		}
	}
	done.Wait()
	return results
}

// enqueue reserves a done slot and queues the job; on a non-nil error
// nothing was reserved and the job will never run. The read lock is
// held from the closed check through the channel send (see closeMu),
// which also bounds how long Close can block behind a full queue: at
// most the queue wait.
func (e *Engine) enqueue(j job) error {
	if err := j.q.Validate(); err != nil {
		return err
	}
	// Fast path: once Close has started, fail before touching closeMu —
	// a writer waiting for the lock blocks new readers, so without this
	// check a submission racing Close would stall behind the drain
	// instead of failing typed.
	if e.closing.Load() {
		return ErrClosed
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() || e.closing.Load() {
		return ErrClosed
	}
	var ctxDone <-chan struct{}
	if j.q.Ctx != nil {
		if cerr := j.q.Ctx.Err(); cerr != nil {
			e.cancels.Inc()
			return fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
		ctxDone = j.q.Ctx.Done() // nil channel (blocks forever) when Ctx is nil
	}
	j.done.Add(1)
	e.queueDepth.Add(1)
	select {
	case e.queue <- j:
		return nil
	default:
	}
	if e.queueWait < 0 { // block-forever mode
		select {
		case e.queue <- j:
			return nil
		case <-ctxDone:
			return e.abandon(j, true)
		}
	}
	timer := time.NewTimer(e.queueWait)
	defer timer.Stop()
	select {
	case e.queue <- j:
		return nil
	case <-ctxDone:
		return e.abandon(j, true)
	case <-timer.C:
		return e.abandon(j, false)
	}
}

// abandon rolls back a reserved-but-unqueued job and returns the typed
// shed/cancel error.
func (e *Engine) abandon(j job, canceled bool) error {
	j.done.Done()
	e.queueDepth.Add(-1)
	if canceled {
		e.cancels.Inc()
		return fmt.Errorf("%w: %w", ErrCanceled, j.q.Ctx.Err())
	}
	e.sheds.Inc()
	return ErrOverloaded
}

// Close drains the queue, waits for in-flight queries, and stops the
// workers. Queries submitted after Close fail with ErrClosed; Close is
// idempotent.
func (e *Engine) Close() {
	e.closing.Store(true)
	e.closeMu.Lock()
	if e.closed.Load() {
		e.closeMu.Unlock()
		return
	}
	e.closed.Store(true)
	e.closeMu.Unlock()
	close(e.queue)
	if e.writeQueue != nil {
		close(e.writeQueue)
	}
	e.wg.Wait()
}

// worker drains the queue until Close.
func (e *Engine) worker(id int) {
	defer e.wg.Done()
	for j := range e.queue {
		e.queueDepth.Add(-1)
		s := e.sessions.Get().(*store.Session)
		s.Reset()
		panicked := e.run(s, j.q, j.res)
		e.account(id, j.res)
		if !panicked {
			// A session that lived through a panic is in an unknown
			// state; drop it and let the pool mint a fresh one.
			e.sessions.Put(s)
		}
		j.done.Done()
		// Yield between queries: a warmed query runs in microseconds with
		// no allocation (no preemption points), so on a host with fewer
		// cores than workers one goroutine could otherwise drain the whole
		// queue inside a scheduler quantum, starving the rest of the pool.
		runtime.Gosched()
	}
}

// run executes one query on the given (freshly reset) session. It
// reports whether the index panicked — the worker then discards the
// session instead of pooling it — while the result, including the
// charges accumulated before the panic, is recorded either way.
func (e *Engine) run(s *store.Session, q Query, res *Result) (panicked bool) {
	if q.Trace {
		res.Trace = obs.NewQueryTrace(q.Kind.String())
		cfg := e.sto.Config()
		res.Trace.SetCosts(cfg.Seek, cfg.Xfer)
		s.SetObserver(res.Trace)
	}
	if q.Ctx != nil {
		s.SetContext(q.Ctx)
	}
	start := time.Now()
	panicked = e.execute(s, q, res)
	if res.Err == nil {
		// A query can swallow individual read errors; the sticky session
		// error is the boundary check that keeps a poisoned result from
		// looking successful.
		res.Err = s.Err()
	}
	res.Wall = time.Since(start)
	res.Stats = s.Stats
	res.SimTime = s.Time()
	return panicked
}

// execute dispatches the query to the index, converting a panic into
// Result.Err so one poisoned query can neither kill its worker (which
// would shrink the pool for the life of the engine) nor leave its
// batch's WaitGroup forever undone.
func (e *Engine) execute(s *store.Session, q Query, res *Result) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			res.Neighbors = nil
			res.Err = fmt.Errorf("%w: %s query: %v", ErrPanicked, q.Kind, r)
			e.panics.Inc()
		}
	}()
	switch q.Kind {
	case KNN:
		if ap := q.approx(); ap.Enabled() {
			e.approxQs.Inc()
			if as, ok := e.idx.(index.ApproxSearcher); ok {
				res.Neighbors, res.Err = as.KNNApprox(s, q.Point, q.K, ap)
				break
			}
			// No approximate support: run exact, which trivially satisfies
			// any recall target (the cost knob degrades to unbounded).
		}
		res.Neighbors, res.Err = e.idx.KNN(s, q.Point, q.K)
	case Range:
		res.Neighbors, res.Err = e.idx.RangeSearch(s, q.Point, q.Eps)
	case Window:
		res.Neighbors, res.Err = e.idx.WindowQuery(s, q.Window)
	default:
		res.Err = fmt.Errorf("engine: unknown query kind %d", q.Kind)
	}
	return false
}

// account records one finished query in the metrics and the per-worker
// busy ledger.
func (e *Engine) account(worker int, res *Result) {
	e.queries.Inc()
	if res.Err != nil {
		e.failures.Inc()
		if errors.Is(res.Err, ErrCanceled) {
			e.cancels.Inc()
		}
	}
	e.simLat.Observe(res.SimTime)
	e.wallLat.Observe(res.Wall.Seconds())
	e.busyMu.Lock()
	e.busy[worker] += res.SimTime
	e.busyMu.Unlock()
}

// WorkerBusy returns each worker's summed simulated busy seconds. The
// slice is one consistent snapshot taken under the ledger lock — a
// concurrent query finishing during the call is either fully included or
// not at all, never half-applied.
func (e *Engine) WorkerBusy() []float64 {
	e.busyMu.Lock()
	defer e.busyMu.Unlock()
	return append([]float64(nil), e.busy...)
}

// Makespan returns the simulated wall-clock of the run so far under the
// model of one disk per worker: the largest per-worker busy sum. With
// queue-balanced work it approaches total busy / workers, which is what
// makes simulated QPS scale with the pool. Like WorkerBusy, the maximum
// is computed under the ledger lock in one critical section, so it is
// monotonically non-decreasing across calls even under concurrent
// accounting.
func (e *Engine) Makespan() float64 {
	e.busyMu.Lock()
	defer e.busyMu.Unlock()
	var m float64
	for _, b := range e.busy {
		if b > m {
			m = b
		}
	}
	return m
}

// String names a query kind.
func (k Kind) String() string {
	switch k {
	case KNN:
		return "knn"
	case Range:
		return "range"
	case Window:
		return "window"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}
