package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/pagesched"
	"repro/internal/store"
	"repro/internal/vec"
)

// Scan-sharing execution (WithScanSharing): instead of one worker
// driving one monolithic query, a single coordinator multiplexes up to
// shareWindow in-flight queries as resumable cursors. Each round it
//
//  1. steps every cursor to its next page-fetch boundary (finished
//     queries are finalized and their slots refilled from the queue),
//  2. gathers the union of wanted pages and plans one deduplicated read
//     schedule with the cross-query cumulated-cost-balance batcher
//     (pagesched.BatchAll) — no block is fetched twice per round,
//  3. fetches each planned span once through the leader query's session
//     (the first wanting query, which accounts the transfer exactly like
//     its share-nothing batch would) and offers every page to all live
//     cursors; co-attached queries consume it as a zero-cost shared read.
//
// Per-query semantics survive sharing: results are identical to
// share-nothing execution, Query.Ctx cancellation is honored at every
// round boundary and at the leader's fetches, degraded/quarantined pages
// take the same per-query recovery paths, and a panic in one cursor
// fails only that query. A reorganization between rounds invalidates
// cursors typed (index.ErrStaleScan) and the coordinator restarts them
// on fresh cursors, bounded by maxSharedRestarts.

// maxSharedRestarts bounds how many times one query is restarted after
// reorganizations invalidated its cursor before it fails with
// ErrStaleScan — progress insurance against a pathological writer that
// reorganizes faster than queries complete.
const maxSharedRestarts = 8

// sharedQuery is one in-flight query of the scan-sharing coordinator.
type sharedQuery struct {
	job      job
	s        *store.Session
	cur      index.Cursor
	lane     int // busy-ledger lane (round-robin, models one disk per worker)
	start    time.Time
	restarts int
	finished bool
	panicked bool
	wants    []int // per-round scratch
}

// canceled reports whether the query's context is already done. A
// canceled query must not lead a span fetch: its session fails the read
// at the next cancellation check, aborting the whole span for everyone
// attached to it — and the doomed query would still be charged the
// transfer.
func (sq *sharedQuery) canceled() bool {
	return sq.job.q.Ctx != nil && sq.job.q.Ctx.Err() != nil
}

// coordinator is the scan-sharing main loop; it replaces the worker pool.
func (e *Engine) coordinator() {
	defer e.wg.Done()
	var active []*sharedQuery
	open := true
	lane := 0
	for open || len(active) > 0 {
		active = e.admit(active, &open, &lane)
		if len(active) == 0 {
			continue
		}
		active = e.round(active)
		// Yield between rounds for the same reason workers yield between
		// queries: warmed rounds run without preemption points.
		runtime.Gosched()
	}
}

// admit refills the active set from the queue up to the share window,
// blocking only when there is nothing in flight at all.
func (e *Engine) admit(active []*sharedQuery, open *bool, lane *int) []*sharedQuery {
	for *open && len(active) < e.shareWindow {
		var j job
		var ok bool
		if len(active) == 0 {
			j, ok = <-e.queue // idle: block until work or Close
		} else {
			select {
			case j, ok = <-e.queue:
			default:
				return active // don't stall in-flight queries on admission
			}
		}
		if !ok {
			*open = false
			return active
		}
		e.queueDepth.Add(-1)
		if sq := e.startShared(j, *lane%e.workers); sq != nil {
			active = append(active, sq)
		}
		*lane++
	}
	return active
}

// startShared prepares one admitted query: pooled session, optional
// trace, context, cursor. Returns nil when the query already finished
// (cursor construction panicked).
func (e *Engine) startShared(j job, lane int) *sharedQuery {
	s := e.sessions.Get().(*store.Session)
	s.Reset()
	sq := &sharedQuery{job: j, s: s, lane: lane, start: time.Now()}
	q := j.q
	if q.Trace {
		j.res.Trace = obs.NewQueryTrace(q.Kind.String())
		cfg := e.sto.Config()
		j.res.Trace.SetCosts(cfg.Seek, cfg.Xfer)
		s.SetObserver(j.res.Trace)
	}
	if q.Ctx != nil {
		s.SetContext(q.Ctx)
	}
	e.guard(sq, func() { sq.cur = e.newCursor(q, s) })
	if sq.panicked || sq.cur == nil {
		e.finishShared(sq)
		return nil
	}
	return sq
}

// newCursor dispatches on the (already validated) query kind.
func (e *Engine) newCursor(q Query, s *store.Session) index.Cursor {
	switch q.Kind {
	case KNN:
		if ap := q.approx(); ap.Enabled() {
			e.approxQs.Inc()
			if as, ok := e.scan.(index.ApproxSharedScan); ok {
				return as.KNNApprox(s, q.Point, q.K, ap)
			}
			// No approximate cursor support: run exact (same fallback as
			// the share-nothing dispatch).
		}
		return e.scan.KNN(s, q.Point, q.K)
	case Range:
		return e.scan.Range(s, q.Point, q.Eps)
	default:
		return e.scan.Window(s, q.Window)
	}
}

// guard runs one cursor interaction, converting a panic into the query's
// failure so a poisoned query cannot kill the coordinator (which would
// wedge every other in-flight query).
func (e *Engine) guard(sq *sharedQuery, f func()) {
	defer func() {
		if r := recover(); r != nil {
			sq.panicked = true
			sq.job.res.Neighbors = nil
			sq.job.res.Err = fmt.Errorf("%w: %s query: %v", ErrPanicked, sq.job.q.Kind, r)
			e.panics.Inc()
		}
	}()
	f()
}

// finishShared finalizes one query exactly like the share-nothing run
// path: sticky session error check, wall/stats/simulated time, metrics,
// busy-lane accounting, session back to the pool (unless panicked).
func (e *Engine) finishShared(sq *sharedQuery) {
	if sq.finished {
		return
	}
	sq.finished = true
	if sq.cur != nil {
		sq.cur.Close()
	}
	res := sq.job.res
	if res.Err == nil {
		res.Err = sq.s.Err()
	}
	res.Wall = time.Since(sq.start)
	res.Stats = sq.s.Stats
	res.SimTime = sq.s.Time()
	e.account(sq.lane, res)
	if !sq.panicked {
		e.sessions.Put(sq.s)
	}
	sq.job.done.Done()
}

// stepShared advances one query to its next fetch boundary, handling
// cancellation, stale-cursor restarts, and completion. Reports whether
// the query finished.
func (e *Engine) stepShared(sq *sharedQuery) bool {
	q := sq.job.q
	for {
		if q.Ctx != nil {
			if cerr := q.Ctx.Err(); cerr != nil {
				if sq.job.res.Err == nil {
					sq.job.res.Err = fmt.Errorf("%w: %w", ErrCanceled, cerr)
				}
				e.finishShared(sq)
				return true
			}
		}
		var done bool
		var err error
		e.guard(sq, func() { done, err = sq.cur.Step() })
		if sq.panicked {
			e.finishShared(sq)
			return true
		}
		if errors.Is(err, index.ErrStaleScan) {
			sq.restarts++
			if sq.restarts > e.maxRestarts {
				e.sharedExhausted.Inc()
				sq.job.res.Err = fmt.Errorf("%w: %w", ErrTooManyRestarts, err)
				e.finishShared(sq)
				return true
			}
			e.sharedRestarts.Inc()
			sq.cur.Close()
			sq.cur = nil
			e.guard(sq, func() { sq.cur = e.newCursor(q, sq.s) })
			if sq.panicked || sq.cur == nil {
				e.finishShared(sq)
				return true
			}
			continue // drive the fresh cursor to its first fetch boundary
		}
		if done {
			var nbs []vec.Neighbor
			var rerr error
			e.guard(sq, func() { nbs, rerr = sq.cur.Results() })
			if !sq.panicked {
				sq.job.res.Neighbors = nbs
				if sq.job.res.Err == nil {
					if err != nil {
						sq.job.res.Err = err
					} else {
						sq.job.res.Err = rerr
					}
				}
			}
			e.finishShared(sq)
			return true
		}
		if err != nil {
			sq.job.res.Err = err
			e.finishShared(sq)
			return true
		}
		return false
	}
}

// round runs one coordinator round: step, plan, fetch, deliver. Returns
// the still-live queries.
func (e *Engine) round(active []*sharedQuery) []*sharedQuery {
	live := active[:0]
	for _, sq := range active {
		if !e.stepShared(sq) {
			live = append(live, sq)
		}
	}
	active = live
	if len(active) == 0 {
		return active
	}
	e.sharedRounds.Inc()

	// Union of wanted pages; the first wanting query leads a page's fetch.
	owner := make(map[int]*sharedQuery, len(active))
	var wants []int
	for _, sq := range active {
		sq.wants = sq.cur.Wants(sq.wants[:0])
		for _, p := range sq.wants {
			if _, ok := owner[p]; !ok {
				owner[p] = sq
				wants = append(wants, p)
			}
		}
	}
	if len(wants) == 0 {
		return active // defensive: a live cursor always wants pages
	}
	sort.Ints(wants)

	// Cross-query plan: wanted pages are certain (probability 1); between
	// them the combined probability that any in-flight query will need
	// the page decides whether to read through the gap.
	layout := e.scan.Layout()
	gen := e.scan.Gen()
	sched := &pagesched.Scheduler{
		Cfg:        e.sto.Config(),
		PageBlocks: layout.PageBlocks,
		NumPages:   layout.NumPages,
		Prob: func(pos int) float64 {
			if _, ok := owner[pos]; ok {
				return 1
			}
			miss := 1.0
			for _, sq := range active {
				if sq.finished {
					continue
				}
				miss *= 1 - sq.cur.AccessProb(pos)
				if miss < pagesched.ProbFloor {
					return 1
				}
			}
			return 1 - miss
		},
	}
	spans := sched.BatchAll(wants)

	wantedFn := func(pos int) bool { _, ok := owner[pos]; return ok }
	for _, span := range spans {
		leader := spanLeader(span, wants, owner)
		if leader == nil {
			continue // every wanting query in this span already failed
		}
		err := e.scan.FetchRun(leader.s, gen, span.First, span.Last, wantedFn,
			func(pg *index.SharedPage) { e.deliver(active, leader, pg) },
			func(pos int) { e.deliverDegraded(active, pos) },
		)
		if err != nil {
			if errors.Is(err, index.ErrStaleScan) {
				break // plan is stale; next round's Steps restart the cursors
			}
			// The leader's session failed the fetch (hard read error or
			// cancellation); only the leader fails. Other queries re-want
			// their undelivered pages next round under a new leader.
			leader.job.res.Err = err
			e.finishShared(leader)
		}
	}

	live = active[:0]
	for _, sq := range active {
		if !sq.finished {
			live = append(live, sq)
		}
	}
	return live
}

// spanLeader returns the first live, non-canceled query owning a want
// inside the span. Skipping just-canceled owners matters: a canceled
// leader's session fails the fetch at its first cancellation check,
// which would both charge the doomed query for a transfer it never uses
// and abort the span for every co-attached query. The canceled query is
// finalized by the next round's step instead.
func spanLeader(span pagesched.PageSpan, wants []int, owner map[int]*sharedQuery) *sharedQuery {
	for i := sort.SearchInts(wants, span.First); i < len(wants) && wants[i] <= span.Last; i++ {
		if sq := owner[wants[i]]; !sq.finished && !sq.canceled() {
			return sq
		}
	}
	return nil
}

// deliver fans one fetched page out to every live cursor, leader first
// (it accounts the transfer the share-nothing way; co-attached queries
// record a zero-cost shared read).
func (e *Engine) deliver(active []*sharedQuery, leader *sharedQuery, pg *index.SharedPage) {
	e.sharedFetched.Inc()
	if !leader.finished {
		e.deliverOne(leader, pg, false)
	}
	for _, sq := range active {
		if sq == leader || sq.finished {
			continue
		}
		e.deliverOne(sq, pg, true)
	}
}

func (e *Engine) deliverOne(sq *sharedQuery, pg *index.SharedPage, shared bool) {
	used := false
	e.guard(sq, func() { used = sq.cur.Deliver(pg, shared) })
	if sq.panicked {
		e.finishShared(sq)
		return
	}
	if used {
		e.sharedServes.Inc()
	}
}

// deliverDegraded reports one unreadable page to every live cursor; each
// recovers through its own redundant path (or records a typed error).
func (e *Engine) deliverDegraded(active []*sharedQuery, pos int) {
	for _, sq := range active {
		if sq.finished {
			continue
		}
		e.guard(sq, func() { sq.cur.DeliverDegraded(pos) })
		if sq.panicked {
			e.finishShared(sq)
		}
	}
}
