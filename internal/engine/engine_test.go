package engine

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xtree"
)

func randPoints(r *rand.Rand, n, dim int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = r.Float32()
		}
		pts[i] = p
	}
	return pts
}

func buildTree(t *testing.T, seed int64, n, dim int) (*store.Store, *core.Tree, []vec.Point) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := randPoints(r, n, dim)
	sto := store.NewSim(store.DefaultConfig())
	tr, err := core.Build(sto, pts, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sto, tr, pts
}

// TestEngineMatchesDirectQueries checks that every query kind routed
// through the pool returns exactly what a direct single-session call
// returns, including the simulated cost.
func TestEngineMatchesDirectQueries(t *testing.T) {
	sto, tr, pts := buildTree(t, 1, 3000, 8)
	e := New(sto, tr, 4)
	defer e.Close()

	r := rand.New(rand.NewSource(2))
	queries := randPoints(r, 30, 8)
	batch := make([]Query, 0, len(queries)*2+1)
	for _, q := range queries {
		batch = append(batch, Query{Kind: KNN, Point: q, K: 5})
		batch = append(batch, Query{Kind: Range, Point: q, Eps: 0.4})
	}
	w := vec.MBR{
		Lo: vec.Point{0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2},
		Hi: vec.Point{0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7},
	}
	batch = append(batch, Query{Kind: Window, Window: w})

	results := e.SubmitBatch(batch)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		s := sto.NewSession()
		var want []vec.Neighbor
		var err error
		switch batch[i].Kind {
		case KNN:
			want, err = tr.KNN(s, batch[i].Point, batch[i].K)
		case Range:
			want, err = tr.RangeSearch(s, batch[i].Point, batch[i].Eps)
		case Window:
			want, err = tr.WindowQuery(s, batch[i].Window)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(res.Neighbors) {
			t.Fatalf("query %d (%v): engine %d results, direct %d",
				i, batch[i].Kind, len(res.Neighbors), len(want))
		}
		for j := range want {
			if want[j].ID != res.Neighbors[j].ID || want[j].Dist != res.Neighbors[j].Dist {
				t.Fatalf("query %d result %d: engine %+v, direct %+v",
					i, j, res.Neighbors[j], want[j])
			}
		}
		if res.SimTime != s.Time() {
			t.Fatalf("query %d: engine sim time %v, direct %v", i, res.SimTime, s.Time())
		}
	}
	_ = pts
}

// TestEngineSessionReuseIsClean verifies that a failed query does not
// poison the pooled session of a later query on the same worker.
func TestEngineSessionReuseIsClean(t *testing.T) {
	sto, tr, _ := buildTree(t, 3, 800, 4)
	e := New(sto, tr, 1) // one worker: the queries share one session
	defer e.Close()

	bad := e.Submit(Query{Kind: Kind(99)})
	if bad.Err == nil {
		t.Fatal("unknown kind should fail")
	}
	good := e.Submit(Query{Kind: KNN, Point: vec.Point{0.5, 0.5, 0.5, 0.5}, K: 3})
	if good.Err != nil {
		t.Fatalf("pooled session leaked failure: %v", good.Err)
	}
	if len(good.Neighbors) != 3 {
		t.Fatalf("got %d neighbors", len(good.Neighbors))
	}
}

// TestEngineTraceAndMetrics checks the observability integration: traces
// on demand, and registry counters/histograms reflecting the run.
func TestEngineTraceAndMetrics(t *testing.T) {
	sto, tr, _ := buildTree(t, 4, 2000, 6)
	reg := &obs.Registry{}
	e := New(sto, tr, 2, WithRegistry(reg))
	defer e.Close()

	res := e.Submit(Query{Kind: KNN, Point: vec.Point{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}, K: 4, Trace: true})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Trace == nil || res.Trace.PagesRead == 0 {
		t.Fatalf("expected a populated trace, got %+v", res.Trace)
	}
	plain := e.Submit(Query{Kind: KNN, Point: vec.Point{0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, K: 4})
	if plain.Trace != nil {
		t.Fatal("trace returned without being requested")
	}

	if got := reg.Counter("engine.queries").Value(); got != 2 {
		t.Fatalf("queries counter = %d, want 2", got)
	}
	if got := reg.Gauge("engine.queue_depth").Value(); got != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", got)
	}
	if snap := reg.Histogram("engine.sim_latency_seconds").Snapshot(); snap.Count != 2 || snap.Max <= 0 {
		t.Fatalf("latency histogram %+v", snap)
	}
}

// TestEngineMakespanAccounting checks the per-worker busy ledger: total
// busy equals the summed per-query sim time, and the makespan lies
// between total/workers and total.
func TestEngineMakespanAccounting(t *testing.T) {
	sto, tr, _ := buildTree(t, 5, 2500, 8)
	e := New(sto, tr, 4)
	defer e.Close()

	r := rand.New(rand.NewSource(6))
	queries := randPoints(r, 64, 8)
	batch := make([]Query, len(queries))
	for i, q := range queries {
		batch[i] = Query{Kind: KNN, Point: q, K: 3}
	}
	results := e.SubmitBatch(batch)
	var total float64
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		total += res.SimTime
	}
	var ledger float64
	for _, b := range e.WorkerBusy() {
		ledger += b
	}
	if diff := ledger - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("busy ledger %v != summed sim time %v", ledger, total)
	}
	m := e.Makespan()
	if m < total/4-1e-9 || m > total+1e-9 {
		t.Fatalf("makespan %v outside [total/4=%v, total=%v]", m, total/4, total)
	}
}

// TestEngineOverXTree drives the X-tree's read path from many workers
// at once (its RWMutex audit under -race) and checks the results against
// direct single-session queries.
func TestEngineOverXTree(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := randPoints(r, 2000, 6)
	sto := store.NewSim(store.DefaultConfig())
	xt, err := xtree.Build(sto, pts, xtree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := New(sto, xt, 8)
	defer e.Close()

	queries := randPoints(r, 40, 6)
	batch := make([]Query, len(queries))
	for i, q := range queries {
		batch[i] = Query{Kind: KNN, Point: q, K: 4}
	}
	for i, res := range e.SubmitBatch(batch) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want, err := xt.KNN(sto.NewSession(), queries[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(res.Neighbors) {
			t.Fatalf("query %d: engine %d results, direct %d", i, len(res.Neighbors), len(want))
		}
		for j := range want {
			if want[j].ID != res.Neighbors[j].ID {
				t.Fatalf("query %d result %d: engine ID %d, direct %d",
					i, j, res.Neighbors[j].ID, want[j].ID)
			}
		}
	}
}

// TestEngineCloseSemantics checks graceful drain and post-close errors.
func TestEngineCloseSemantics(t *testing.T) {
	sto, tr, _ := buildTree(t, 7, 600, 4)
	e := New(sto, tr, 2)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := e.Submit(Query{Kind: KNN, Point: vec.Point{0.3, 0.3, 0.3, 0.3}, K: 2})
			if res.Err != nil && res.Err != ErrClosed {
				t.Errorf("unexpected error: %v", res.Err)
			}
		}()
	}
	wg.Wait()
	e.Close()
	e.Close() // idempotent
	if res := e.Submit(Query{Kind: KNN, Point: vec.Point{0.3, 0.3, 0.3, 0.3}, K: 2}); res.Err != ErrClosed {
		t.Fatalf("post-close submit: %v, want ErrClosed", res.Err)
	}
	if res := e.SubmitBatch([]Query{{Kind: KNN, Point: vec.Point{0.1, 0.1, 0.1, 0.1}, K: 1}}); res[0].Err != ErrClosed {
		t.Fatalf("post-close batch: %v, want ErrClosed", res[0].Err)
	}
}
