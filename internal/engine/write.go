package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/vec"
)

// Write path: a dedicated queue and a single writer goroutine beside the
// read pool. Writes share the engine's admission control — the same
// closed check, bounded queue wait, shedding, and context cancellation
// as queries — but drain on their own lane, because the index serializes
// mutations internally anyway: more write workers would only contend.
//
// The writer coalesces adjacent queued inserts into one InsertBatch call
// (up to writeCoalesceMax points). On a WAL-mode tree that turns a burst
// of single-point submissions into one logical record and one group
// commit, which is where ingest throughput comes from; every submitter
// still gets its own acknowledgement, and an acknowledgement still means
// applied (and durable when the index logs).

// ErrNoWrites is returned by SubmitWrite when the engine was built
// without WithWrites or its index does not implement Mutator.
var ErrNoWrites = errors.New("engine: no write path configured")

// ErrInvalidWrite marks a write rejected at submission because its shape
// cannot be executed. The write never reaches the writer.
var ErrInvalidWrite = errors.New("engine: invalid write")

// writeCoalesceMax caps how many points the writer folds into one
// InsertBatch call when draining a burst of queued inserts.
const writeCoalesceMax = 64

// Mutator is the write contract an index must implement for the
// engine's write path; *core.Tree satisfies it.
type Mutator interface {
	InsertBatch(s *store.Session, pts []vec.Point, ids []uint32) error
	Delete(s *store.Session, p vec.Point, id uint32) (bool, error)
}

// WriteKind selects the operation of a Write.
type WriteKind int

const (
	WriteInsert WriteKind = iota
	WriteDelete
)

// Write is one unit of mutation work: points to insert, or (point, id)
// pairs to delete.
type Write struct {
	Kind   WriteKind
	Points []vec.Point
	IDs    []uint32

	// Ctx, when non-nil, bounds the wait for queue space. A write that
	// reached the writer is applied even if its context expires
	// mid-application — a partially visible mutation would be worse than
	// a late one.
	Ctx context.Context
}

// Validate checks the write's shape, returning an error wrapping
// ErrInvalidWrite for writes that cannot be executed.
func (w Write) Validate() error {
	if w.Kind != WriteInsert && w.Kind != WriteDelete {
		return fmt.Errorf("%w: unknown kind %d", ErrInvalidWrite, int(w.Kind))
	}
	if len(w.Points) == 0 {
		return fmt.Errorf("%w: no points", ErrInvalidWrite)
	}
	if len(w.Points) != len(w.IDs) {
		return fmt.Errorf("%w: %d points, %d ids", ErrInvalidWrite, len(w.Points), len(w.IDs))
	}
	for i, p := range w.Points {
		if p == nil {
			return fmt.Errorf("%w: nil point at %d", ErrInvalidWrite, i)
		}
	}
	return nil
}

// WriteResult is the outcome of one Write.
type WriteResult struct {
	Found   int   // delete: pairs found and removed; insert: points added
	Err     error // nil means every point was applied (durably, in WAL mode)
	Wall    time.Duration
	SimTime float64
	Stats   store.Stats
}

type writeJob struct {
	w    Write
	res  *WriteResult
	done *sync.WaitGroup
}

// WithWrites enables the engine's write path. The index must implement
// Mutator, or every SubmitWrite fails with ErrNoWrites.
func WithWrites() Option {
	return func(e *Engine) { e.writesOn = true }
}

// SubmitWrite applies one write through the engine's writer and blocks
// until it is applied (and, on a WAL-mode index, durable). Admission
// mirrors Submit: ErrClosed after Close, ErrOverloaded when the write
// queue stays full past the queue wait, ErrCanceled when the context
// expires while waiting, and ErrInvalidWrite for malformed shapes.
func (e *Engine) SubmitWrite(w Write) WriteResult {
	var res WriteResult
	var done sync.WaitGroup
	if err := e.enqueueWrite(writeJob{w: w, res: &res, done: &done}); err != nil {
		return WriteResult{Err: err}
	}
	done.Wait()
	return res
}

// enqueueWrite mirrors enqueue for the write lane (see closeMu).
func (e *Engine) enqueueWrite(j writeJob) error {
	if e.mut == nil {
		return ErrNoWrites
	}
	if err := j.w.Validate(); err != nil {
		return err
	}
	if e.closing.Load() { // see enqueue: fail fast once Close has started
		return ErrClosed
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() || e.closing.Load() {
		return ErrClosed
	}
	var ctxDone <-chan struct{}
	if j.w.Ctx != nil {
		if cerr := j.w.Ctx.Err(); cerr != nil {
			e.cancels.Inc()
			return fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
		ctxDone = j.w.Ctx.Done()
	}
	j.done.Add(1)
	e.writeQueueDepth.Add(1)
	select {
	case e.writeQueue <- j:
		return nil
	default:
	}
	if e.queueWait < 0 {
		select {
		case e.writeQueue <- j:
			return nil
		case <-ctxDone:
			return e.abandonWrite(j, true)
		}
	}
	timer := time.NewTimer(e.queueWait)
	defer timer.Stop()
	select {
	case e.writeQueue <- j:
		return nil
	case <-ctxDone:
		return e.abandonWrite(j, true)
	case <-timer.C:
		return e.abandonWrite(j, false)
	}
}

// abandonWrite rolls back a reserved-but-unqueued write and returns the
// typed shed/cancel error.
func (e *Engine) abandonWrite(j writeJob, canceled bool) error {
	j.done.Done()
	e.writeQueueDepth.Add(-1)
	if canceled {
		e.cancels.Inc()
		return fmt.Errorf("%w: %w", ErrCanceled, j.w.Ctx.Err())
	}
	e.sheds.Inc()
	return ErrOverloaded
}

// writer drains the write queue until Close, coalescing insert bursts.
func (e *Engine) writer() {
	defer e.wg.Done()
	for j := range e.writeQueue {
		e.writeQueueDepth.Add(-1)
		batch := []writeJob{j}
		if j.w.Kind == WriteInsert {
			// Fold queued inserts in, up to the coalescing cap. Stop after
			// taking a delete: reordering a delete around a later insert
			// could change which version of an id dies.
			points := len(j.w.Points)
		coalesce:
			for points < writeCoalesceMax {
				select {
				case nj, ok := <-e.writeQueue:
					if !ok {
						break coalesce
					}
					e.writeQueueDepth.Add(-1)
					batch = append(batch, nj)
					if nj.w.Kind != WriteInsert {
						break coalesce
					}
					points += len(nj.w.Points)
				default:
					break coalesce
				}
			}
		}
		e.applyWrites(batch)
	}
}

// applyWrites executes a drained run of write jobs: the inserts as one
// InsertBatch, then any trailing delete pair-by-pair, preserving the
// queue's relative insert/delete order. Every job gets its own result
// and acknowledgement.
func (e *Engine) applyWrites(batch []writeJob) {
	s := e.sessions.Get().(*store.Session)
	s.Reset()
	start := time.Now()

	var inserts []writeJob
	for _, j := range batch {
		if j.w.Kind == WriteInsert {
			inserts = append(inserts, j)
		}
	}
	if len(inserts) > 0 {
		var pts []vec.Point
		var ids []uint32
		for _, j := range inserts {
			pts = append(pts, j.w.Points...)
			ids = append(ids, j.w.IDs...)
		}
		err := e.mut.InsertBatch(s, pts, ids)
		for _, j := range inserts {
			j.res.Err = err
			if err == nil {
				j.res.Found = len(j.w.Points)
			}
		}
		e.writeBatches.Inc()
	}
	for _, j := range batch {
		if j.w.Kind != WriteDelete {
			continue
		}
		for i := range j.w.Points {
			ok, err := e.mut.Delete(s, j.w.Points[i], j.w.IDs[i])
			if err != nil {
				j.res.Err = err
				break
			}
			if ok {
				j.res.Found++
			}
		}
	}

	wall := time.Since(start)
	sim := s.Time()
	stats := s.Stats
	sessionErr := s.Err()
	for _, j := range batch {
		if j.res.Err == nil {
			j.res.Err = sessionErr
		}
		j.res.Wall = wall
		j.res.SimTime = sim
		j.res.Stats = stats
		e.writeCount.Inc()
		if j.res.Err != nil {
			e.writeFailures.Inc()
		}
		j.done.Done()
	}
	if sessionErr == nil {
		e.sessions.Put(s)
	}
}

// Writable reports whether the engine accepts writes (WithWrites was set
// and the index implements Mutator).
func (e *Engine) Writable() bool { return e.mut != nil }
