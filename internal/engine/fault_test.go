package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// stubIndex is a scriptable index for serving-hardening tests: each
// query calls fn (when set) before returning a fixed neighbor.
type stubIndex struct {
	fn func(s *store.Session)
}

func (x *stubIndex) answer(s *store.Session) ([]vec.Neighbor, error) {
	if x.fn != nil {
		x.fn(s)
	}
	// Touch the context the way the real indexes do at page-fetch
	// boundaries: via the session's sticky error surface.
	return []vec.Neighbor{{ID: 1}}, s.Err()
}

func (x *stubIndex) KNN(s *store.Session, q vec.Point, k int) ([]vec.Neighbor, error) {
	return x.answer(s)
}
func (x *stubIndex) RangeSearch(s *store.Session, q vec.Point, eps float64) ([]vec.Neighbor, error) {
	return x.answer(s)
}
func (x *stubIndex) WindowQuery(s *store.Session, w vec.MBR) ([]vec.Neighbor, error) {
	return x.answer(s)
}
func (x *stubIndex) Len() int                { return 1 }
func (x *stubIndex) Dim() int                { return 2 }
func (x *stubIndex) IndexStats() index.Stats { return index.Stats{Method: "stub"} }

// TestEnginePanicRecovery: a panicking query becomes Result.Err, the
// batch still completes, the worker survives to serve later queries,
// and the panic is counted.
func TestEnginePanicRecovery(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	calls := 0
	idx := &stubIndex{fn: func(s *store.Session) {
		calls++
		if calls == 1 {
			panic("poisoned page")
		}
	}}
	reg := &obs.Registry{}
	e := New(sto, idx, 1, WithRegistry(reg)) // one worker: it must survive
	defer e.Close()

	res := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
	if !errors.Is(res.Err, ErrPanicked) {
		t.Fatalf("panic should surface typed as ErrPanicked, got %v", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "poisoned page") {
		t.Fatalf("panic error lost the panic value: %v", res.Err)
	}
	if res.Neighbors != nil {
		t.Fatal("panicked query must not return partial neighbors")
	}
	// The single worker is still alive and serves the next query.
	ok := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
	if ok.Err != nil {
		t.Fatalf("worker died after panic: %v", ok.Err)
	}
	if got := reg.Counter("engine.panics").Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	if got := reg.Counter("engine.failures").Value(); got != 1 {
		t.Fatalf("failures counter = %d, want 1", got)
	}
}

// TestEnginePanicBatchCompletes: a batch containing panicking queries
// never hangs — every done slot is released.
func TestEnginePanicBatchCompletes(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	idx := &stubIndex{fn: func(s *store.Session) { panic("every query dies") }}
	e := New(sto, idx, 2)
	defer e.Close()

	doneCh := make(chan []Result, 1)
	go func() {
		doneCh <- e.SubmitBatch([]Query{
			{Kind: KNN}, {Kind: Range}, {Kind: Window}, {Kind: KNN},
		})
	}()
	select {
	case results := <-doneCh:
		for i, res := range results {
			if res.Err == nil {
				t.Fatalf("query %d should carry the panic error", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch with panicking queries hung")
	}
}

// TestEngineLoadShedding: when the queue stays full past the queue
// wait, submissions fail fast with ErrOverloaded instead of blocking.
func TestEngineLoadShedding(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	release := make(chan struct{})
	idx := &stubIndex{fn: func(s *store.Session) { <-release }}
	reg := &obs.Registry{}
	e := New(sto, idx, 1, WithRegistry(reg), WithQueueWait(time.Millisecond))
	defer e.Close()

	// One query occupies the worker, 4 fill the queue (cap 4*workers);
	// submissions beyond that must shed.
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
		}()
	}
	// Wait until the queue is actually full.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("engine.queue_depth").Value() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	res := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("saturated submit: %v, want ErrOverloaded", res.Err)
	}
	if got := reg.Counter("engine.sheds").Value(); got == 0 {
		t.Fatal("sheds counter did not move")
	}
	close(release)
	wg.Wait()
}

// TestEngineContextCancellation: a done context fails the query typed,
// whether it is caught at submission or at a page-fetch boundary.
func TestEngineContextCancellation(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	f, err := sto.NewFile("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Append(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	idx := &stubIndex{fn: func(s *store.Session) {
		s.Read(f, 0, 1) // page-fetch boundary: checks the context
	}}
	reg := &obs.Registry{}
	e := New(sto, idx, 1, WithRegistry(reg))
	defer e.Close()

	// Pre-canceled context: rejected at submission.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1, Ctx: ctx})
	if !errors.Is(res.Err, ErrCanceled) || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("pre-canceled submit: %v", res.Err)
	}

	// Context canceled mid-run: the session's page-fetch check trips.
	ctx2, cancel2 := context.WithCancel(context.Background())
	idx.fn = func(s *store.Session) {
		cancel2()
		s.Read(f, 0, 1)
	}
	res = e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1, Ctx: ctx2})
	if !errors.Is(res.Err, ErrCanceled) {
		t.Fatalf("mid-run cancellation: %v", res.Err)
	}
	if got := reg.Counter("engine.cancellations").Value(); got < 2 {
		t.Fatalf("cancellations counter = %d, want >= 2", got)
	}

	// A live context is invisible.
	idx.fn = func(s *store.Session) { s.Read(f, 0, 1) }
	res = e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1, Ctx: context.Background()})
	if res.Err != nil {
		t.Fatalf("live context: %v", res.Err)
	}
}

// TestEngineSubmitCloseRace hammers Submit against a concurrent Close
// under the race detector: no send on a closed channel, no hang, and
// every submission either runs or fails with ErrClosed.
func TestEngineSubmitCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		sto := store.NewSim(store.DefaultConfig())
		e := New(sto, &stubIndex{}, 2, WithQueueWait(-1))
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					res := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
					if res.Err != nil && !errors.Is(res.Err, ErrClosed) {
						t.Errorf("race round %d: %v", round, res.Err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e.Close()
		}()
		close(start)
		wg.Wait()
	}
}
