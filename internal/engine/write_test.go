package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
)

// buildWALTree builds a WAL-mode tree for write-path tests.
func buildWALTree(t *testing.T, seed int64, n, dim int) (*store.Store, *core.Tree, []vec.Point) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := randPoints(r, n, dim)
	sto := store.NewSim(store.DefaultConfig())
	opt := core.DefaultOptions()
	opt.WAL = true
	tr, err := core.Build(sto, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	return sto, tr, pts
}

func TestSubmitWriteRequiresOption(t *testing.T) {
	sto, tr, _ := buildTree(t, 40, 500, 4)
	e := New(sto, tr, 2)
	defer e.Close()
	if e.Writable() {
		t.Fatal("engine without WithWrites reports Writable")
	}
	res := e.SubmitWrite(Write{Kind: WriteInsert, Points: []vec.Point{{1, 2, 3, 4}}, IDs: []uint32{9}})
	if !errors.Is(res.Err, ErrNoWrites) {
		t.Fatalf("SubmitWrite without write path: %v, want ErrNoWrites", res.Err)
	}
}

func TestSubmitWriteValidation(t *testing.T) {
	sto, tr, _ := buildTree(t, 41, 500, 4)
	e := New(sto, tr, 2, WithWrites())
	defer e.Close()
	if !e.Writable() {
		t.Fatal("engine with WithWrites over a core tree not writable")
	}
	cases := []Write{
		{Kind: WriteInsert},
		{Kind: WriteInsert, Points: []vec.Point{{1, 2, 3, 4}}, IDs: []uint32{1, 2}},
		{Kind: WriteInsert, Points: []vec.Point{nil}, IDs: []uint32{1}},
		{Kind: WriteKind(99), Points: []vec.Point{{1, 2, 3, 4}}, IDs: []uint32{1}},
	}
	for i, w := range cases {
		if res := e.SubmitWrite(w); !errors.Is(res.Err, ErrInvalidWrite) {
			t.Fatalf("case %d: %v, want ErrInvalidWrite", i, res.Err)
		}
	}
}

func TestSubmitWriteAfterClose(t *testing.T) {
	sto, tr, _ := buildTree(t, 42, 500, 4)
	e := New(sto, tr, 2, WithWrites())
	e.Close()
	res := e.SubmitWrite(Write{Kind: WriteInsert, Points: []vec.Point{{1, 2, 3, 4}}, IDs: []uint32{9}})
	if !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("SubmitWrite after Close: %v, want ErrClosed", res.Err)
	}
}

func TestSubmitWriteCanceledContext(t *testing.T) {
	sto, tr, _ := buildTree(t, 43, 500, 4)
	e := New(sto, tr, 2, WithWrites())
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.SubmitWrite(Write{
		Kind: WriteInsert, Points: []vec.Point{{1, 2, 3, 4}}, IDs: []uint32{9}, Ctx: ctx,
	})
	if !errors.Is(res.Err, ErrCanceled) {
		t.Fatalf("SubmitWrite with done context: %v, want ErrCanceled", res.Err)
	}
}

// TestWritePathMixedIngest hammers the write lane from many goroutines —
// inserts and deletes — while readers query through the pool, then
// verifies the final content and the write metrics.
func TestWritePathMixedIngest(t *testing.T) {
	reg := &obs.Registry{}
	sto, tr, pts := buildWALTree(t, 44, 2000, 6)
	e := New(sto, tr, 4, WithWrites(), WithRegistry(reg))
	defer e.Close()

	r := rand.New(rand.NewSource(45))
	extra := randPoints(r, 400, 6)
	queries := randPoints(r, 40, 6)

	var wg sync.WaitGroup
	const writers = 8
	perWriter := len(extra) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				idx := w*perWriter + i
				res := e.SubmitWrite(Write{
					Kind:   WriteInsert,
					Points: []vec.Point{extra[idx]},
					IDs:    []uint32{uint32(100000 + idx)},
				})
				if res.Err != nil {
					t.Errorf("insert %d: %v", idx, res.Err)
					return
				}
				if res.Found != 1 {
					t.Errorf("insert %d: Found=%d", idx, res.Found)
				}
			}
		}(w)
	}
	// Deletes of base points ride alongside the insert burst.
	wg.Add(1)
	deleted := map[uint32]bool{}
	go func() {
		defer wg.Done()
		for i := 0; i < len(pts); i += 11 {
			res := e.SubmitWrite(Write{
				Kind:   WriteDelete,
				Points: []vec.Point{pts[i]},
				IDs:    []uint32{uint32(i)},
			})
			if res.Err != nil {
				t.Errorf("delete %d: %v", i, res.Err)
				return
			}
			if res.Found != 1 {
				t.Errorf("delete %d: Found=%d", i, res.Found)
			}
		}
	}()
	// Readers overlap the ingest; results are checked for internal
	// consistency only (content races with the writers by design).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, q := range queries {
			res := e.Submit(Query{Kind: KNN, Point: q, K: 3})
			if res.Err != nil {
				t.Errorf("query: %v", res.Err)
				return
			}
			if !sort.SliceIsSorted(res.Neighbors, func(a, b int) bool {
				return res.Neighbors[a].Dist < res.Neighbors[b].Dist
			}) {
				t.Error("unsorted KNN result during ingest")
			}
		}
	}()
	wg.Wait()
	for i := 0; i < len(pts); i += 11 {
		deleted[uint32(i)] = true
	}

	// Final content: base minus deletes plus extras, checked exactly.
	var want []vec.Point
	for i, p := range pts {
		if !deleted[uint32(i)] {
			want = append(want, p)
		}
	}
	want = append(want, extra...)
	if got := tr.Len(); got != len(want) {
		t.Fatalf("tree has %d points, want %d", got, len(want))
	}
	for qi, q := range queries[:10] {
		res := e.Submit(Query{Kind: KNN, Point: q, K: 5})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		ds := make([]float64, len(want))
		for i, p := range want {
			ds[i] = vec.Euclidean.Dist(q, p)
		}
		sort.Float64s(ds)
		for i := range res.Neighbors {
			if math.Abs(res.Neighbors[i].Dist-ds[i]) > 1e-5 {
				t.Fatalf("query %d result %d: %f vs %f", qi, i, res.Neighbors[i].Dist, ds[i])
			}
		}
	}

	snap := reg.Snapshot().Counters
	wantWrites := int64(writers*perWriter + (len(pts)+10)/11)
	if snap["engine.writes"] != wantWrites {
		t.Fatalf("engine.writes = %d, want %d", snap["engine.writes"], wantWrites)
	}
	if snap["engine.write_failures"] != 0 {
		t.Fatalf("engine.write_failures = %d", snap["engine.write_failures"])
	}
	if b := snap["engine.write_batches"]; b < 1 || b > wantWrites {
		t.Fatalf("engine.write_batches = %d, want 1..%d", b, wantWrites)
	}

	// Durability: every acknowledged write survives a crash-reopen.
	rec, err := core.Open(store.Wrap(sto.Backend()))
	if err != nil {
		t.Fatalf("recovery after ingest: %v", err)
	}
	if rec.Len() != len(want) {
		t.Fatalf("recovered tree has %d points, want %d", rec.Len(), len(want))
	}
}

// gatedMutator wraps a tree so the test can hold the writer inside an
// InsertBatch call while later submissions pile up in the queue, making
// the coalescing observable deterministically.
type gatedMutator struct {
	*core.Tree
	started chan struct{} // one send per InsertBatch entry
	gate    chan struct{} // one receive per InsertBatch before applying

	mu         sync.Mutex
	batchSizes []int
}

func (g *gatedMutator) InsertBatch(s *store.Session, pts []vec.Point, ids []uint32) error {
	g.started <- struct{}{}
	<-g.gate
	g.mu.Lock()
	g.batchSizes = append(g.batchSizes, len(pts))
	g.mu.Unlock()
	return g.Tree.InsertBatch(s, pts, ids)
}

// TestWriteCoalescing holds the writer inside the first insert while
// nine more single-point inserts queue up, then checks the writer folds
// them into one batch application: 10 writes, 2 batches of 1 and 9.
func TestWriteCoalescing(t *testing.T) {
	reg := &obs.Registry{}
	sto, tr, _ := buildWALTree(t, 46, 1500, 4)
	gm := &gatedMutator{Tree: tr, started: make(chan struct{}), gate: make(chan struct{})}
	e := New(sto, gm, 2, WithWrites(), WithRegistry(reg))
	defer e.Close()

	r := rand.New(rand.NewSource(47))
	extra := randPoints(r, 10, 4)
	var wg sync.WaitGroup
	submit := func(i int) {
		defer wg.Done()
		res := e.SubmitWrite(Write{
			Kind:   WriteInsert,
			Points: []vec.Point{extra[i]},
			IDs:    []uint32{uint32(50000 + i)},
		})
		if res.Err != nil {
			t.Errorf("insert %d: %v", i, res.Err)
		}
	}
	wg.Add(1)
	go submit(0)
	<-gm.started // the writer is now blocked inside insert 0
	for i := 1; i < len(extra); i++ {
		wg.Add(1)
		go submit(i)
	}
	// All nine are queued (or blocked sending) once the depth reads 9.
	for e.writeQueueDepth.Value() != 9 {
		runtime.Gosched()
	}
	gm.gate <- struct{}{} // release insert 0: applied alone
	<-gm.started          // the writer picked up the rest as one batch
	gm.gate <- struct{}{}
	wg.Wait()

	gm.mu.Lock()
	sizes := append([]int(nil), gm.batchSizes...)
	gm.mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 9 {
		t.Fatalf("batch sizes = %v, want [1 9]", sizes)
	}
	snap := reg.Snapshot().Counters
	if snap["engine.writes"] != 10 || snap["engine.write_batches"] != 2 {
		t.Fatalf("writes=%d batches=%d, want 10/2",
			snap["engine.writes"], snap["engine.write_batches"])
	}
	if tr.Len() != 1500+10 {
		t.Fatalf("tree has %d points, want %d", tr.Len(), 1510)
	}
}
