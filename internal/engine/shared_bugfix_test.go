package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/pagesched"
	"repro/internal/store"
	"repro/internal/vec"
)

// TestSpanLeaderSkipsCanceled is the regression test for leader
// election: a query whose context is already done must never lead a
// span fetch (its session would fail the read at the next cancellation
// check, aborting the span for every co-attached query and charging the
// doomed query the transfer). Finished and canceled owners are skipped;
// the first live owner leads.
func TestSpanLeaderSkipsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceledSQ := &sharedQuery{job: job{q: Query{Ctx: ctx}, res: &Result{}}}
	finishedSQ := &sharedQuery{finished: true, job: job{res: &Result{}}}
	liveSQ := &sharedQuery{job: job{res: &Result{}}}

	wants := []int{3, 5, 9}
	owner := map[int]*sharedQuery{3: canceledSQ, 5: finishedSQ, 9: liveSQ}

	if got := spanLeader(pagesched.PageSpan{First: 0, Last: 10}, wants, owner); got != liveSQ {
		t.Fatalf("leader = %p, want the live owner %p (canceled and finished owners must be skipped)", got, liveSQ)
	}
	if got := spanLeader(pagesched.PageSpan{First: 0, Last: 5}, wants, owner); got != nil {
		t.Fatalf("span with only canceled/finished owners elected leader %p, want nil", got)
	}
	if got := spanLeader(pagesched.PageSpan{First: 9, Last: 9}, wants, owner); got != liveSQ {
		t.Fatalf("single-want span: leader = %p, want %p", got, liveSQ)
	}
	// An owner with a live (not-yet-done) context leads normally.
	liveCtxSQ := &sharedQuery{job: job{q: Query{Ctx: context.Background()}, res: &Result{}}}
	owner[3] = liveCtxSQ
	if got := spanLeader(pagesched.PageSpan{First: 0, Last: 10}, wants, owner); got != liveCtxSQ {
		t.Fatalf("owner with live context skipped: leader = %p, want %p", got, liveCtxSQ)
	}
}

// TestSharedRestartsExhaustedTyped pins the typed failure of a shared
// query whose restart budget is exhausted by a writer reorganizing
// faster than queries complete: the error is errors.Is-able as both
// ErrTooManyRestarts and index.ErrStaleScan, and every exhaustion is
// counted in engine.shared.restarts_exhausted.
func TestSharedRestartsExhaustedTyped(t *testing.T) {
	sto, tr, _ := buildTree(t, 61, 3000, 6)
	reg := &obs.Registry{}
	e := New(sto, tr, 2, WithScanSharing(), WithRegistry(reg))
	// Zero restart budget: the first stale cursor fails the query. The
	// coordinator only reads maxRestarts after receiving a job, and the
	// queue send below happens after this write, so the override is
	// race-free.
	e.maxRestarts = 0
	defer e.Close()

	stop := make(chan struct{})
	var reopt sync.WaitGroup
	reopt.Add(1)
	go func() {
		defer reopt.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tr.Reoptimize(); err != nil {
				t.Errorf("reoptimize: %v", err)
				return
			}
		}
	}()

	r := rand.New(rand.NewSource(62))
	exhausted := 0
	for attempt := 0; attempt < 8 && exhausted == 0; attempt++ {
		for _, res := range e.SubmitBatch(mixedBatch(r, 32, 6)) {
			if res.Err == nil {
				continue
			}
			if !errors.Is(res.Err, ErrTooManyRestarts) {
				t.Fatalf("shared failure under tight reoptimize: %v, want ErrTooManyRestarts", res.Err)
			}
			if !errors.Is(res.Err, index.ErrStaleScan) {
				t.Fatalf("exhaustion error %v does not wrap index.ErrStaleScan", res.Err)
			}
			exhausted++
		}
	}
	close(stop)
	reopt.Wait()
	if t.Failed() {
		return
	}
	if exhausted == 0 {
		t.Skip("tight reoptimize loop never invalidated a cursor (single-core scheduling); nothing to assert")
	}
	if got := reg.Counter("engine.shared.restarts_exhausted").Value(); got < int64(exhausted) {
		t.Fatalf("engine.shared.restarts_exhausted = %d, want >= %d observed exhaustions", got, exhausted)
	}
}

// TestSharedLeaderFailureAccounting injects hard read errors under the
// shared pipeline (retries disabled, so every injected fault fails its
// leader's span fetch mid-round) and asserts the accounting contract
// survives leader failure: undelivered pages re-wanted under a new
// leader never double-count SharedBlocks, so every query's trace totals
// — failed leaders included — still equal its session stats exactly,
// and every survivor still answers exactly.
func TestSharedLeaderFailureAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	pts := randPoints(r, 4000, 8)
	fs := store.NewFaultStore(store.NewSimStore(store.DefaultConfig()), store.FaultConfig{
		Seed:    64,
		ReadErr: 0.03,
	})
	fs.SetEnabled(false) // build cleanly
	sto := store.Wrap(fs)
	tr, err := core.Build(sto, pts, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// No retries: an injected transient read error becomes a hard fetch
	// failure, killing the leader of the span mid-round.
	sto.SetRetryPolicy(store.RetryPolicy{})

	reg := &obs.Registry{}
	e := New(sto, tr, 4, WithScanSharing(), WithRegistry(reg), WithShareWindow(32))
	defer e.Close()

	// Near-identical queries: candidate pages overlap almost completely,
	// so spans have many co-attached followers and a failed leader leaves
	// undelivered pages for a successor to re-fetch.
	center := vec.Point{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	batch := make([]Query, 32)
	for i := range batch {
		q := make(vec.Point, len(center))
		for j := range q {
			q[j] = center[j] + (r.Float32()-0.5)*0.02
		}
		batch[i] = Query{Kind: KNN, Point: q, K: 5, Trace: true}
	}

	fs.SetEnabled(true)
	failures, sharedBlocks := 0, 0
	for attempt := 0; attempt < 6 && failures == 0; attempt++ {
		for i, res := range e.SubmitBatch(batch) {
			if res.Trace == nil {
				t.Fatalf("query %d: no trace", i)
			}
			seeks, blocks, reads, cpu := res.Trace.Totals()
			if seeks != res.Stats.Seeks || blocks != res.Stats.BlocksRead || reads != res.Stats.Reads {
				t.Fatalf("query %d (err=%v): trace totals (%d,%d,%d) != stats %+v — leader failure broke attribution",
					i, res.Err, seeks, blocks, reads, res.Stats)
			}
			if math.Abs(cpu-res.Stats.CPUSeconds) > 1e-9 {
				t.Fatalf("query %d: trace cpu %g != stats cpu %g", i, cpu, res.Stats.CPUSeconds)
			}
			sharedBlocks += res.Trace.SharedBlocks()
			if res.Err != nil {
				if !errors.Is(res.Err, store.ErrTransient) {
					t.Fatalf("query %d failed outside the injected fault path: %v", i, res.Err)
				}
				failures++
				continue
			}
			// Survivors answer exactly despite co-scheduled leader deaths.
			fs.SetEnabled(false)
			want, err := tr.KNN(sto.NewSession(), batch[i].Point, batch[i].K)
			fs.SetEnabled(true)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Neighbors) != len(want) {
				t.Fatalf("query %d: %d results, want %d", i, len(res.Neighbors), len(want))
			}
			for j := range want {
				if res.Neighbors[j].ID != want[j].ID || res.Neighbors[j].Dist != want[j].Dist {
					t.Fatalf("query %d result %d diverged after leader failover", i, j)
				}
			}
		}
	}
	if failures == 0 {
		t.Fatal("fault injection never failed a leader; the test exercised nothing")
	}
	if sharedBlocks == 0 {
		t.Fatal("no shared reads recorded; spans had no followers, so leader failure was not exercised")
	}
}
