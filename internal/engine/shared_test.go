package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xtree"
)

func mixedBatch(r *rand.Rand, n, dim int) []Query {
	batch := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = r.Float32()
		}
		switch i % 3 {
		case 0:
			batch = append(batch, Query{Kind: KNN, Point: q, K: 1 + r.Intn(8)})
		case 1:
			batch = append(batch, Query{Kind: Range, Point: q, Eps: 0.2 + r.Float64()*0.3})
		default:
			lo := make(vec.Point, dim)
			hi := make(vec.Point, dim)
			for j := range lo {
				a := r.Float32() * 0.6
				lo[j], hi[j] = a, a+0.3+r.Float32()*0.3
			}
			batch = append(batch, Query{Kind: Window, Window: vec.MBR{Lo: lo, Hi: hi}})
		}
	}
	return batch
}

// TestEngineSharingMatchesShareNothing is the engine-level equivalence
// contract: a mixed batch through the scan-sharing coordinator returns
// bit-identical neighbors to the same batch through the share-nothing
// worker pool.
func TestEngineSharingMatchesShareNothing(t *testing.T) {
	sto, tr, _ := buildTree(t, 41, 4000, 8)
	shared := New(sto, tr, 4, WithScanSharing())
	defer shared.Close()
	plain := New(sto, tr, 4)
	defer plain.Close()
	if !shared.Sharing() {
		t.Fatal("IQ-tree engine with WithScanSharing should share")
	}
	if plain.Sharing() {
		t.Fatal("engine without WithScanSharing should not share")
	}

	r := rand.New(rand.NewSource(42))
	batch := mixedBatch(r, 48, 8)
	got := shared.SubmitBatch(batch)
	want := plain.SubmitBatch(batch)
	for i := range batch {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("query %d: shared err %v, plain err %v", i, got[i].Err, want[i].Err)
		}
		if len(got[i].Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("query %d (%v): shared %d results, plain %d",
				i, batch[i].Kind, len(got[i].Neighbors), len(want[i].Neighbors))
		}
		for j := range want[i].Neighbors {
			g, w := got[i].Neighbors[j], want[i].Neighbors[j]
			if g.ID != w.ID || g.Dist != w.Dist {
				t.Fatalf("query %d result %d: shared (%d,%v), plain (%d,%v)",
					i, j, g.ID, g.Dist, w.ID, w.Dist)
			}
		}
	}
}

// TestEngineSharingFallback checks that WithScanSharing on an index
// without shared-scan support degrades gracefully to the worker pool.
func TestEngineSharingFallback(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	pts := randPoints(r, 1500, 5)
	sto := store.NewSim(store.DefaultConfig())
	xt, err := xtree.Build(sto, pts, xtree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := New(sto, xt, 4, WithScanSharing())
	defer e.Close()
	if e.Sharing() {
		t.Fatal("X-tree does not implement SharedScanner; engine must fall back")
	}
	queries := randPoints(r, 12, 5)
	for i, q := range queries {
		res := e.Submit(Query{Kind: KNN, Point: q, K: 3})
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		want, err := xt.KNN(sto.NewSession(), q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != len(want) || res.Neighbors[0].ID != want[0].ID {
			t.Fatalf("query %d: fallback results diverge", i)
		}
	}
}

// TestEngineSharingCancellation checks per-query context semantics in
// the shared pipeline: a canceled query fails with ErrCanceled while
// co-scheduled queries complete with correct answers.
func TestEngineSharingCancellation(t *testing.T) {
	sto, tr, _ := buildTree(t, 44, 3000, 6)
	e := New(sto, tr, 2, WithScanSharing())
	defer e.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	r := rand.New(rand.NewSource(45))
	queries := randPoints(r, 8, 6)
	var wg sync.WaitGroup
	results := make([]Result, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q vec.Point) {
			defer wg.Done()
			qq := Query{Kind: KNN, Point: q, K: 3}
			if i%2 == 1 {
				qq.Ctx = canceled
			}
			results[i] = e.Submit(qq)
		}(i, q)
	}
	wg.Wait()
	for i, res := range results {
		if i%2 == 1 {
			if !errors.Is(res.Err, ErrCanceled) {
				t.Fatalf("canceled query %d: err %v, want ErrCanceled", i, res.Err)
			}
			continue
		}
		if res.Err != nil {
			t.Fatalf("live query %d failed alongside canceled peers: %v", i, res.Err)
		}
		want, err := tr.KNN(sto.NewSession(), queries[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if res.Neighbors[j].ID != want[j].ID {
				t.Fatalf("live query %d result %d diverged", i, j)
			}
		}
	}
}

// TestEngineSharingCountersAndTraces pins the observability contract of
// the shared pipeline: a clustered batch fetches each page once but
// serves it to several queries (serves/fetches > 1), per-query traces
// still sum exactly to the session's accounted stats, and co-attached
// reads appear in the trace's shared tier.
func TestEngineSharingCountersAndTraces(t *testing.T) {
	sto, tr, _ := buildTree(t, 46, 4000, 8)
	reg := &obs.Registry{}
	e := New(sto, tr, 4, WithScanSharing(), WithRegistry(reg), WithShareWindow(32))
	defer e.Close()

	// 32 near-identical queries: their candidate pages overlap almost
	// completely, so sharing must serve far more pages than it fetches.
	center := vec.Point{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	r := rand.New(rand.NewSource(47))
	batch := make([]Query, 32)
	for i := range batch {
		q := make(vec.Point, len(center))
		for j := range q {
			q[j] = center[j] + (r.Float32()-0.5)*0.02
		}
		batch[i] = Query{Kind: KNN, Point: q, K: 5, Trace: true}
	}
	results := e.SubmitBatch(batch)

	sharedBlocks := 0
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		if res.Trace == nil {
			t.Fatalf("query %d: no trace", i)
		}
		seeks, blocks, reads, cpu := res.Trace.Totals()
		if seeks != res.Stats.Seeks || blocks != res.Stats.BlocksRead || reads != res.Stats.Reads {
			t.Fatalf("query %d: trace totals (%d,%d,%d) != stats %+v — shared reads leaked into totals",
				i, seeks, blocks, reads, res.Stats)
		}
		if math.Abs(cpu-res.Stats.CPUSeconds) > 1e-9 {
			t.Fatalf("query %d: trace cpu %g != stats cpu %g", i, cpu, res.Stats.CPUSeconds)
		}
		sharedBlocks += res.Trace.SharedBlocks()
	}
	if sharedBlocks == 0 {
		t.Fatal("clustered batch recorded no shared reads in any trace")
	}
	fetched := reg.Counter("engine.shared.pages_fetched").Value()
	serves := reg.Counter("engine.shared.page_serves").Value()
	rounds := reg.Counter("engine.shared.rounds").Value()
	if fetched == 0 || rounds == 0 {
		t.Fatalf("sharing counters silent: fetched=%d rounds=%d", fetched, rounds)
	}
	if float64(serves)/float64(fetched) <= 1.0 {
		t.Fatalf("sharing ratio %d/%d = %.2f, want > 1 for clustered queries",
			serves, fetched, float64(serves)/float64(fetched))
	}
}

// TestEngineQueryValidation checks that malformed queries are rejected
// at submission with the typed ErrInvalidQuery, never reaching the
// execution pipeline.
func TestEngineQueryValidation(t *testing.T) {
	sto, tr, _ := buildTree(t, 48, 500, 4)
	e := New(sto, tr, 2, WithScanSharing())
	defer e.Close()

	p := vec.Point{0.5, 0.5, 0.5, 0.5}
	bad := []Query{
		{Kind: KNN, K: 3},                // nil point
		{Kind: KNN, Point: p, K: 0},      // k <= 0
		{Kind: KNN, Point: p, K: -2},     // k <= 0
		{Kind: Range, Eps: 0.1},          // nil point
		{Kind: Range, Point: p, Eps: -1}, // negative eps
		{Kind: Range, Point: p, Eps: math.NaN()},
		{Kind: Window}, // empty window
		{Kind: Window, Window: vec.MBR{Lo: vec.Point{0, 0}, Hi: vec.Point{1}}},    // mismatched dims
		{Kind: Window, Window: vec.MBR{Lo: vec.Point{1, 1}, Hi: vec.Point{0, 0}}}, // inverted
		{Kind: Kind(99), Point: p, K: 1},                                          // unknown kind
		{Kind: KNN, Point: p, K: 3, MinRecall: -0.1},                              // recall below [0, 1]
		{Kind: KNN, Point: p, K: 3, MinRecall: 1.5},                               // recall above [0, 1]
		{Kind: KNN, Point: p, K: 3, MinRecall: math.NaN()},                        // recall NaN
		{Kind: KNN, Point: p, K: 3, MaxCost: -1},                                  // negative budget
		{Kind: KNN, Point: p, K: 3, MinRecall: 0.9, MaxCost: 5},                   // both knobs at once
		{Kind: Range, Point: p, Eps: 0.1, MinRecall: 0.9},                         // approx knob on non-KNN
		{Kind: Window, Window: vec.MBR{Lo: p, Hi: p}, MaxCost: 5},                 // approx knob on non-KNN
	}
	for i, q := range bad {
		res := e.Submit(q)
		if !errors.Is(res.Err, ErrInvalidQuery) {
			t.Fatalf("bad query %d: err %v, want ErrInvalidQuery", i, res.Err)
		}
	}
	good := []Query{
		{Kind: KNN, Point: p, K: 3},
		{Kind: KNN, Point: p, K: 3, MinRecall: 0.9}, // recall knob alone
		{Kind: KNN, Point: p, K: 3, MinRecall: 1},   // exact-degenerate knob
		{Kind: KNN, Point: p, K: 3, MaxCost: 5},     // budget knob alone
	}
	for i, q := range good {
		if res := e.Submit(q); res.Err != nil {
			t.Fatalf("valid query %d rejected: %v", i, res.Err)
		}
	}
}

// TestEngineBusyMakespanConsistency is the satellite race test: Makespan
// and WorkerBusy read a consistent snapshot while queries are completing
// concurrently, and Makespan never decreases.
func TestEngineBusyMakespanConsistency(t *testing.T) {
	for _, sharing := range []bool{false, true} {
		name := "plain"
		opts := []Option{}
		if sharing {
			name = "sharing"
			opts = append(opts, WithScanSharing())
		}
		t.Run(name, func(t *testing.T) {
			sto, tr, _ := buildTree(t, 49, 2000, 6)
			e := New(sto, tr, 4, opts...)
			defer e.Close()

			stop := make(chan struct{})
			var readers sync.WaitGroup
			for g := 0; g < 3; g++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					prev := 0.0
					for {
						select {
						case <-stop:
							return
						default:
						}
						busy := e.WorkerBusy()
						if len(busy) != e.Workers() {
							t.Errorf("WorkerBusy returned %d lanes, want %d", len(busy), e.Workers())
							return
						}
						var max float64
						for _, b := range busy {
							if b < 0 {
								t.Errorf("negative busy %v", b)
								return
							}
							if b > max {
								max = b
							}
						}
						m := e.Makespan()
						if m < prev {
							t.Errorf("Makespan decreased: %v -> %v", prev, m)
							return
						}
						prev = m
					}
				}()
			}

			r := rand.New(rand.NewSource(50))
			batch := mixedBatch(r, 64, 6)
			var total float64
			for _, res := range e.SubmitBatch(batch) {
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				total += res.SimTime
			}
			close(stop)
			readers.Wait()

			var ledger float64
			for _, b := range e.WorkerBusy() {
				ledger += b
			}
			if math.Abs(ledger-total) > 1e-9 {
				t.Fatalf("busy ledger %v != summed sim time %v", ledger, total)
			}
			m := e.Makespan()
			if m < total/4-1e-9 || m > total+1e-9 {
				t.Fatalf("makespan %v outside [total/4=%v, total=%v]", m, total/4, total)
			}
		})
	}
}

// TestEngineSharingSurvivesReoptimize runs reorganizations concurrently
// with a shared batch: stale cursors must be restarted transparently and
// every query must still answer exactly.
func TestEngineSharingSurvivesReoptimize(t *testing.T) {
	sto, tr, _ := buildTree(t, 51, 3000, 6)
	reg := &obs.Registry{}
	e := New(sto, tr, 4, WithScanSharing(), WithRegistry(reg))
	defer e.Close()

	// A writer reorganizing in a tight loop would exhaust the bounded
	// restart budget by design (maxSharedRestarts); a realistic writer
	// reorganizes occasionally, so space the generations out.
	stop := make(chan struct{})
	var reopt sync.WaitGroup
	reopt.Add(1)
	go func() {
		defer reopt.Done()
		for i := 0; i < 4; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := tr.Reoptimize(); err != nil {
				t.Errorf("reoptimize: %v", err)
				return
			}
		}
	}()

	r := rand.New(rand.NewSource(52))
	batch := mixedBatch(r, 40, 6)
	results := e.SubmitBatch(batch)
	close(stop)
	reopt.Wait()
	if t.Failed() {
		return
	}

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d under reoptimize: %v", i, res.Err)
		}
		s := sto.NewSession()
		var want []vec.Neighbor
		var err error
		switch batch[i].Kind {
		case KNN:
			want, err = tr.KNN(s, batch[i].Point, batch[i].K)
		case Range:
			want, err = tr.RangeSearch(s, batch[i].Point, batch[i].Eps)
		default:
			want, err = tr.WindowQuery(s, batch[i].Window)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(res.Neighbors), len(want))
		}
		// The query may have run against any generation; page order (and
		// with it tie/window ordering) differs across layouts, so compare
		// the result sets, not the sequences.
		got := append([]vec.Neighbor(nil), res.Neighbors...)
		byDistID := func(nbs []vec.Neighbor) func(a, b int) bool {
			return func(a, b int) bool {
				if nbs[a].Dist != nbs[b].Dist {
					return nbs[a].Dist < nbs[b].Dist
				}
				return nbs[a].ID < nbs[b].ID
			}
		}
		sort.Slice(got, byDistID(got))
		sort.Slice(want, byDistID(want))
		for j := range want {
			if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
				t.Fatalf("query %d result %d diverged after reoptimize", i, j)
			}
		}
	}
}
