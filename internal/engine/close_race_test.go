package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/vec"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineClosingVisibleDuringClose is the regression test for the
// health/close race: Close can block for up to the queue wait behind a
// submission that holds the closeMu read lock while waiting for queue
// space, and during that window the engine used to report Ready — a
// routing layer polling Health would keep sending work to a replica
// already committed to dying. Close must become visible atomically the
// moment it starts: Health not Ready, submissions failing ErrClosed.
func TestEngineClosingVisibleDuringClose(t *testing.T) {
	sto := store.NewSim(store.DefaultConfig())
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	idx := &stubIndex{fn: func(s *store.Session) {
		entered <- struct{}{}
		<-release
	}}
	// One worker, queue capacity 4, and a queue wait long enough that the
	// pre-fix window (Close stuck behind the waiter's read lock) would be
	// reliably observable.
	e := New(sto, idx, 1, WithQueueWait(5*time.Second))

	// Wedge the engine: one query inside the index, four filling the
	// queue, and a sixth holding the read lock while it waits for space.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
		}()
	}
	<-entered // the worker is parked inside the index
	waitUntil(t, "queue full plus one waiter", func() bool {
		return e.Health().QueueDepth == 5
	})

	closeDone := make(chan struct{})
	go func() {
		e.Close()
		close(closeDone)
	}()
	waitUntil(t, "close start visible", func() bool {
		return e.Health().Closing
	})

	// Close has started but cannot have finished (the worker is still
	// parked): the snapshot must already say not-Ready...
	h := e.Health()
	if h.Ready() {
		t.Fatalf("engine reports Ready while Close is draining: %+v", h)
	}
	if h.Closed {
		t.Fatalf("drain cannot have completed with the worker parked: %+v", h)
	}
	// ...and a new submission must fail typed immediately, not stall
	// behind the drain for the full queue wait.
	start := time.Now()
	res := e.Submit(Query{Kind: KNN, Point: vec.Point{0, 0}, K: 1})
	if !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("submit during close: err = %v, want ErrClosed", res.Err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("submit during close took %v, want immediate rejection", d)
	}

	close(release)
	wg.Wait()
	<-closeDone
	if h := e.Health(); !h.Closed || h.Ready() {
		t.Fatalf("post-close health %+v", h)
	}
}
