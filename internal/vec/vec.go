// Package vec provides the basic geometric vocabulary of the IQ-tree:
// fixed-dimensionality float32 points, distance metrics, and minimum
// bounding rectangles (MBRs) with the MINDIST/MAXDIST machinery used by
// nearest-neighbor search.
//
// Points are stored as float32 (the paper's "32-bit exact representation");
// all arithmetic accumulates in float64 to keep distance comparisons stable.
package vec

import (
	"fmt"
	"math"
)

// Point is a d-dimensional point. The dimensionality is implicit in the
// slice length; all points handled by one index must share it.
type Point []float32

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Neighbor is one similarity-search result, shared by every access method
// in this module (IQ-tree, X-tree, VA-file, sequential scan).
type Neighbor struct {
	ID    uint32
	Dist  float64
	Point Point
}

// Metric identifies a distance metric. The cost model and the search
// algorithms support the Euclidean and maximum metrics from the paper,
// plus the Manhattan metric for completeness.
type Metric int

const (
	// Euclidean is the L2 metric.
	Euclidean Metric = iota
	// Maximum is the L∞ (Chebyshev) metric.
	Maximum
	// Manhattan is the L1 metric.
	Manhattan
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "L2"
	case Maximum:
		return "Lmax"
	case Manhattan:
		return "L1"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Dist returns the distance between p and q under metric m.
// It panics if the dimensionalities differ.
func (m Metric) Dist(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(p), len(q)))
	}
	switch m {
	case Euclidean:
		return math.Sqrt(sqDist(p, q))
	case Maximum:
		var d float64
		for i := range p {
			if v := math.Abs(float64(p[i]) - float64(q[i])); v > d {
				d = v
			}
		}
		return d
	case Manhattan:
		var d float64
		for i := range p {
			d += math.Abs(float64(p[i]) - float64(q[i]))
		}
		return d
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(m)))
	}
}

// SqDist returns the squared Euclidean distance between p and q.
// It is cheaper than Euclidean.Dist and order-equivalent, so inner search
// loops compare squared distances.
func SqDist(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(p), len(q)))
	}
	return sqDist(p, q)
}

func sqDist(p, q Point) float64 {
	var s float64
	for i := range p {
		v := float64(p[i]) - float64(q[i])
		s += v * v
	}
	return s
}
