package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoint(r *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = float32(r.NormFloat64())
	}
	return p
}

func TestMetricString(t *testing.T) {
	cases := map[Metric]string{Euclidean: "L2", Maximum: "Lmax", Manhattan: "L1", Metric(9): "Metric(9)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Metric(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestDistKnownValues(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := Euclidean.Dist(p, q); math.Abs(d-5) > 1e-9 {
		t.Errorf("L2 = %f, want 5", d)
	}
	if d := Maximum.Dist(p, q); math.Abs(d-4) > 1e-9 {
		t.Errorf("Lmax = %f, want 4", d)
	}
	if d := Manhattan.Dist(p, q); math.Abs(d-7) > 1e-9 {
		t.Errorf("L1 = %f, want 7", d)
	}
	if d := SqDist(p, q); math.Abs(d-25) > 1e-9 {
		t.Errorf("SqDist = %f, want 25", d)
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Euclidean.Dist(Point{1}, Point{1, 2})
}

// Property: every metric satisfies identity, symmetry and the triangle
// inequality on random points.
func TestMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, met := range []Metric{Euclidean, Maximum, Manhattan} {
		for trial := 0; trial < 300; trial++ {
			d := 1 + r.Intn(12)
			a, b, c := randPoint(r, d), randPoint(r, d), randPoint(r, d)
			if met.Dist(a, a) != 0 {
				t.Fatalf("%v: d(a,a) != 0", met)
			}
			if math.Abs(met.Dist(a, b)-met.Dist(b, a)) > 1e-12 {
				t.Fatalf("%v: not symmetric", met)
			}
			if met.Dist(a, c) > met.Dist(a, b)+met.Dist(b, c)+1e-9 {
				t.Fatalf("%v: triangle inequality violated", met)
			}
		}
	}
}

// Property: Lmax ≤ L2 ≤ L1 for any pair of points.
func TestMetricOrdering(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float32) bool {
		a := Point{ax, ay, az}
		b := Point{bx, by, bz}
		lmax := Maximum.Dist(a, b)
		l2 := Euclidean.Dist(a, b)
		l1 := Manhattan.Dist(a, b)
		return lmax <= l2+1e-6 && l2 <= l1+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p.Equal(q) {
		t.Fatal("mutating clone affected original comparison")
	}
	if p[0] != 1 {
		t.Fatal("clone aliases original")
	}
	if p.Equal(Point{1, 2}) {
		t.Fatal("points of different dimensions compare equal")
	}
}

func TestMBRExtendContains(t *testing.T) {
	m := NewMBR(3)
	if !m.Empty() {
		t.Fatal("new MBR should be empty")
	}
	pts := []Point{{0, 1, 2}, {3, -1, 5}, {1, 1, 1}}
	for _, p := range pts {
		m.Extend(p)
	}
	if m.Empty() {
		t.Fatal("extended MBR still empty")
	}
	for _, p := range pts {
		if !m.Contains(p) {
			t.Fatalf("MBR does not contain %v", p)
		}
	}
	if m.Contains(Point{10, 0, 0}) {
		t.Fatal("MBR contains a far point")
	}
	if m.Lo[1] != -1 || m.Hi[2] != 5 {
		t.Fatalf("wrong bounds: %v", m)
	}
}

// Property: MBROf contains all its points, and MinDist to a contained
// point is 0 while MaxDist is ≥ the distance to any point of the set.
func TestMBRDistanceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(8)
		n := 2 + r.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randPoint(r, d)
		}
		m := MBROf(pts)
		q := randPoint(r, d)
		for _, met := range []Metric{Euclidean, Maximum, Manhattan} {
			minD := m.MinDist(q, met)
			maxD := m.MaxDist(q, met)
			if minD > maxD+1e-9 {
				t.Fatalf("MinDist %f > MaxDist %f", minD, maxD)
			}
			for _, p := range pts {
				dp := met.Dist(q, p)
				if dp < minD-1e-5 {
					t.Fatalf("%v: point at %f closer than MinDist %f", met, dp, minD)
				}
				if dp > maxD+1e-5 {
					t.Fatalf("%v: point at %f farther than MaxDist %f", met, dp, maxD)
				}
			}
		}
		for _, p := range pts {
			if m.MinDist(p, Euclidean) != 0 {
				t.Fatal("MinDist from contained point not 0")
			}
		}
		if math.Sqrt(m.MinSqDist(q))-m.MinDist(q, Euclidean) > 1e-9 {
			t.Fatal("MinSqDist inconsistent with MinDist")
		}
	}
}

func TestMBRIntersection(t *testing.T) {
	a := MBR{Lo: Point{0, 0}, Hi: Point{2, 2}}
	b := MBR{Lo: Point{1, 1}, Hi: Point{3, 3}}
	c := MBR{Lo: Point{5, 5}, Hi: Point{6, 6}}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Fatal("intersection predicate wrong")
	}
	got, ok := a.Intersection(b)
	if !ok || got.Lo[0] != 1 || got.Hi[0] != 2 {
		t.Fatalf("intersection box wrong: %v %v", got, ok)
	}
	if _, ok := a.Intersection(c); ok {
		t.Fatal("disjoint boxes intersected")
	}
	if v := a.OverlapVolume(b); math.Abs(v-1) > 1e-9 {
		t.Fatalf("overlap volume %f, want 1", v)
	}
	if v := a.OverlapVolume(c); v != 0 {
		t.Fatalf("overlap volume %f, want 0", v)
	}
}

func TestMBRGeometry(t *testing.T) {
	m := MBR{Lo: Point{0, 0, 0}, Hi: Point{1, 2, 4}}
	if v := m.Volume(); math.Abs(v-8) > 1e-9 {
		t.Fatalf("volume %f", v)
	}
	if g := m.Margin(); math.Abs(g-7) > 1e-9 {
		t.Fatalf("margin %f", g)
	}
	dim, ext := m.MaxSide()
	if dim != 2 || math.Abs(ext-4) > 1e-9 {
		t.Fatalf("max side (%d, %f)", dim, ext)
	}
	ctr := m.Center()
	if ctr[0] != 0.5 || ctr[1] != 1 || ctr[2] != 2 {
		t.Fatalf("center %v", ctr)
	}
}

func TestMBRContainsMBRAndUnion(t *testing.T) {
	a := MBR{Lo: Point{0, 0}, Hi: Point{4, 4}}
	b := MBR{Lo: Point{1, 1}, Hi: Point{2, 2}}
	if !a.ContainsMBR(b) || b.ContainsMBR(a) {
		t.Fatal("ContainsMBR wrong")
	}
	c := b.Clone()
	c.ExtendMBR(a)
	if !c.ContainsMBR(a) || !c.ContainsMBR(b) {
		t.Fatal("ExtendMBR did not produce a union cover")
	}
}
