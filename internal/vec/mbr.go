package vec

import (
	"fmt"
	"math"
)

// MBR is a minimum bounding rectangle given by its lower and upper corner.
// A zero-value MBR is "empty" and is the identity for Extend/ExtendMBR.
type MBR struct {
	Lo Point
	Hi Point
}

// NewMBR returns an empty MBR of dimensionality d, ready to be extended.
func NewMBR(d int) MBR {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		lo[i] = float32(math.Inf(1))
		hi[i] = float32(math.Inf(-1))
	}
	return MBR{Lo: lo, Hi: hi}
}

// MBROf computes the minimum bounding rectangle of a non-empty point set.
func MBROf(pts []Point) MBR {
	if len(pts) == 0 {
		panic("vec: MBROf of empty point set")
	}
	m := NewMBR(len(pts[0]))
	for _, p := range pts {
		m.Extend(p)
	}
	return m
}

// Dim returns the dimensionality of the MBR.
func (m MBR) Dim() int { return len(m.Lo) }

// Empty reports whether the MBR has not been extended by any point.
func (m MBR) Empty() bool {
	return len(m.Lo) == 0 || float64(m.Lo[0]) > float64(m.Hi[0])
}

// Clone returns a deep copy of m.
func (m MBR) Clone() MBR {
	return MBR{Lo: m.Lo.Clone(), Hi: m.Hi.Clone()}
}

// Extend grows the MBR in place to cover p.
func (m *MBR) Extend(p Point) {
	if len(p) != len(m.Lo) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(p), len(m.Lo)))
	}
	for i, v := range p {
		if v < m.Lo[i] {
			m.Lo[i] = v
		}
		if v > m.Hi[i] {
			m.Hi[i] = v
		}
	}
}

// ExtendMBR grows the MBR in place to cover o.
func (m *MBR) ExtendMBR(o MBR) {
	for i := range o.Lo {
		if o.Lo[i] < m.Lo[i] {
			m.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > m.Hi[i] {
			m.Hi[i] = o.Hi[i]
		}
	}
}

// Contains reports whether p lies inside the closed box m.
func (m MBR) Contains(p Point) bool {
	for i, v := range p {
		if v < m.Lo[i] || v > m.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsMBR reports whether o lies entirely inside m.
func (m MBR) ContainsMBR(o MBR) bool {
	for i := range o.Lo {
		if o.Lo[i] < m.Lo[i] || o.Hi[i] > m.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether m and o share at least one point.
func (m MBR) Intersects(o MBR) bool {
	for i := range m.Lo {
		if m.Hi[i] < o.Lo[i] || o.Hi[i] < m.Lo[i] {
			return false
		}
	}
	return true
}

// Intersection returns the intersection box of m and o and whether it is
// non-empty.
func (m MBR) Intersection(o MBR) (MBR, bool) {
	if !m.Intersects(o) {
		return MBR{}, false
	}
	r := NewMBR(m.Dim())
	for i := range m.Lo {
		r.Lo[i] = maxf(m.Lo[i], o.Lo[i])
		r.Hi[i] = minf(m.Hi[i], o.Hi[i])
	}
	return r, true
}

// Side returns the extent of the MBR along dimension i.
func (m MBR) Side(i int) float64 {
	return float64(m.Hi[i]) - float64(m.Lo[i])
}

// MaxSide returns the dimension with the largest extent and that extent.
// Ties resolve to the lowest dimension, making splits deterministic.
func (m MBR) MaxSide() (dim int, ext float64) {
	ext = math.Inf(-1)
	for i := range m.Lo {
		if s := m.Side(i); s > ext {
			ext = s
			dim = i
		}
	}
	return dim, ext
}

// Volume returns the d-dimensional volume of the box. Degenerate sides
// contribute factor 0.
func (m MBR) Volume() float64 {
	v := 1.0
	for i := range m.Lo {
		v *= m.Side(i)
	}
	return v
}

// Margin returns the sum of the side lengths (the R*-tree "margin" measure,
// up to the constant factor 2^(d-1)).
func (m MBR) Margin() float64 {
	var s float64
	for i := range m.Lo {
		s += m.Side(i)
	}
	return s
}

// OverlapVolume returns the volume of the intersection of m and o
// (0 if disjoint).
func (m MBR) OverlapVolume(o MBR) float64 {
	v := 1.0
	for i := range m.Lo {
		lo := math.Max(float64(m.Lo[i]), float64(o.Lo[i]))
		hi := math.Min(float64(m.Hi[i]), float64(o.Hi[i]))
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Center returns the center point of the box.
func (m MBR) Center() Point {
	c := make(Point, m.Dim())
	for i := range c {
		c[i] = float32((float64(m.Lo[i]) + float64(m.Hi[i])) / 2)
	}
	return c
}

// MinDist returns the minimum distance from q to any point of the box under
// metric met (0 if q is inside). This is the MINDIST of the HS algorithm.
func (m MBR) MinDist(q Point, met Metric) float64 {
	switch met {
	case Euclidean:
		return math.Sqrt(m.MinSqDist(q))
	case Maximum:
		var d float64
		for i, v := range q {
			d = math.Max(d, axisDist(v, m.Lo[i], m.Hi[i]))
		}
		return d
	case Manhattan:
		var d float64
		for i, v := range q {
			d += axisDist(v, m.Lo[i], m.Hi[i])
		}
		return d
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(met)))
	}
}

// MinSqDist returns the squared Euclidean MINDIST from q to the box.
func (m MBR) MinSqDist(q Point) float64 {
	var s float64
	for i, v := range q {
		d := axisDist(v, m.Lo[i], m.Hi[i])
		s += d * d
	}
	return s
}

// MaxDist returns the maximum distance from q to any point of the box under
// metric met (attained at the farthest corner).
func (m MBR) MaxDist(q Point, met Metric) float64 {
	switch met {
	case Euclidean:
		var s float64
		for i, v := range q {
			d := axisFarDist(v, m.Lo[i], m.Hi[i])
			s += d * d
		}
		return math.Sqrt(s)
	case Maximum:
		var d float64
		for i, v := range q {
			d = math.Max(d, axisFarDist(v, m.Lo[i], m.Hi[i]))
		}
		return d
	case Manhattan:
		var d float64
		for i, v := range q {
			d += axisFarDist(v, m.Lo[i], m.Hi[i])
		}
		return d
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(met)))
	}
}

// axisDist is the 1-D distance from v to the interval [lo, hi].
func axisDist(v, lo, hi float32) float64 {
	switch {
	case v < lo:
		return float64(lo) - float64(v)
	case v > hi:
		return float64(v) - float64(hi)
	default:
		return 0
	}
}

// axisFarDist is the 1-D distance from v to the farther end of [lo, hi].
func axisFarDist(v, lo, hi float32) float64 {
	a := math.Abs(float64(v) - float64(lo))
	b := math.Abs(float64(v) - float64(hi))
	return math.Max(a, b)
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
