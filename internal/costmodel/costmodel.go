// Package costmodel implements the IQ-tree query cost model of paper
// Section 3.4 (Eq. 6–25). The model predicts the expected time of a
// nearest-neighbor query as
//
//	T = T1st + T2nd + T3rd                             (Eq. 23)
//
// where T1st is the linear scan of the flat directory (Eq. 22), T2nd the
// optimized read of the quantized second level (Eq. 16–21), and T3rd the
// refinement look-ups into exact geometry (Eq. 6–15). T3rd is the
// "variable cost" that depends on how each individual page is quantized;
// T1st and T2nd depend only on the number of pages — the "constant cost"
// of Section 3.5. Correlated data is handled through the fractal dimension
// D_F (Eq. 13–18).
package costmodel

import (
	"math"

	"repro/internal/mathx"
	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

// Model carries everything needed to evaluate the cost equations for one
// database. It is immutable after construction and safe for concurrent use.
type Model struct {
	// Disk holds the hardware parameters (t_seek, t_xfer, block size).
	Disk store.Config
	// Metric is the query metric (Euclidean or Maximum).
	Metric vec.Metric
	// Dim is the embedding dimensionality d.
	Dim int
	// N is the total number of points in the database.
	N int
	// FractalDim is D_F; set it to Dim for the uniform/independent model.
	FractalDim float64
	// DataSpace is the MBR of the whole database.
	DataSpace vec.MBR
	// DirEntryBytes is the size of one first-level directory entry.
	DirEntryBytes int
	// QPageBlocks is the fixed size of a quantized data page in blocks.
	QPageBlocks int
	// ExactBlocks is the number of blocks one exact-geometry look-up
	// transfers (usually 1).
	ExactBlocks int
	// RefineFactor scales the refinement cost (default 1 when 0). The
	// builder can set it from an empirical calibration pass: the paper's
	// closed-form refinement probability keeps its shape across
	// quantization levels but its absolute scale can be off on strongly
	// non-uniform data.
	RefineFactor float64
	// K is the number of neighbors the modeled queries request (default
	// 1). Per the paper's footnote, the k-NN extension replaces "the
	// volume expected to contain one point" by the volume expected to
	// contain k points in Eq. 7/14 and Eq. 17.
	K int
}

// k returns the effective neighbor count.
func (m *Model) k() float64 {
	if m.K <= 0 {
		return 1
	}
	return float64(m.K)
}

// PageInfo describes one quantized data page for total-cost evaluation.
type PageInfo struct {
	MBR   vec.MBR
	Count int // points on the page
	Bits  int // quantization level g
}

// euclidean reports whether the model uses L2 volumes; every other metric
// uses the L∞ (cube) volume formulas, which are exact for Maximum and an
// upper bound otherwise.
func (m *Model) euclidean() bool { return m.Metric == vec.Euclidean }

// sideFloor returns a tiny positive floor for degenerate MBR sides,
// relative to the data-space extent, so densities stay finite when a
// partition is flat in some dimension.
func (m *Model) sideFloor(i int) float64 {
	s := m.DataSpace.Side(i)
	if s <= 0 {
		s = 1
	}
	return s * 1e-9
}

// sides returns the side lengths of mbr floored per sideFloor.
func (m *Model) sides(mbr vec.MBR) []float64 {
	out := make([]float64, m.Dim)
	for i := 0; i < m.Dim; i++ {
		out[i] = math.Max(mbr.Side(i), m.sideFloor(i))
	}
	return out
}

// volume returns the floored volume of mbr.
func (m *Model) volume(mbr vec.MBR) float64 {
	v := 1.0
	for _, s := range m.sides(mbr) {
		v *= s
	}
	return v
}

// PointDensity returns the (fractal) point density ρ_F of a page region
// (Eq. 6 and 13): count / V^(D_F/d).
func (m *Model) PointDensity(mbr vec.MBR, count int) float64 {
	v := m.volume(mbr)
	return float64(count) / math.Pow(v, m.FractalDim/float64(m.Dim))
}

// NNRadius returns the expected k-nearest-neighbor distance inside a page
// region (Eq. 7 and 14, with the footnote's k-NN extension): the radius
// of the query-metric ball expected to contain exactly K points at the
// local density.
func (m *Model) NNRadius(mbr vec.MBR, count int) float64 {
	rho := m.PointDensity(mbr, count)
	if rho <= 0 {
		return 0
	}
	vol := math.Pow(m.k()/rho, float64(m.Dim)/m.FractalDim)
	if m.euclidean() {
		return mathx.SphereRadius(m.Dim, vol)
	}
	return mathx.CubeRadius(m.Dim, vol)
}

// cellSides returns the side lengths of one quantization grid cell of the
// page: MBR sides divided by 2^bits (Eq. 10).
func (m *Model) cellSides(mbr vec.MBR, bits int) []float64 {
	sides := m.sides(mbr)
	scale := math.Pow(2, -float64(bits))
	for i := range sides {
		sides[i] *= scale
	}
	return sides
}

// RefinementProbability returns the probability that a point stored at the
// given quantization level must be refined (its exact geometry loaded)
// during a nearest-neighbor query (Eq. 15). Queries are assumed to follow
// the data distribution: the probability is the expected fraction of query
// points falling into the Minkowski enlargement of the point's grid cell
// by the NN sphere, evaluated at the local fractal density.
func (m *Model) RefinementProbability(mbr vec.MBR, count, bits int) float64 {
	if bits >= quantize.ExactBits {
		return 0 // exact pages never refine
	}
	r := m.NNRadius(mbr, count)
	cell := m.cellSides(mbr, bits)
	var vMink float64
	if m.euclidean() {
		vMink = mathx.MinkowskiBoxSphereEucl(cell, r)
	} else {
		vMink = mathx.MinkowskiBoxSphereMax(cell, r)
	}
	rho := m.PointDensity(mbr, count)
	p := rho * math.Pow(vMink, m.FractalDim/float64(m.Dim)) / float64(m.N)
	return mathx.Clamp(p, 0, 1)
}

// ExactLookupCost returns the time of one refinement access to the exact
// geometry: a random seek plus the transfer of ExactBlocks blocks.
func (m *Model) ExactLookupCost() float64 {
	return m.Disk.Seek + float64(m.ExactBlocks)*m.Disk.Xfer
}

// RefinementCost is the expected third-level cost contributed by one page
// per query: count · P_refinement · lookup cost. This is the "variable
// cost" of the optimization in Section 3.5.
func (m *Model) RefinementCost(mbr vec.MBR, count, bits int) float64 {
	f := m.RefineFactor
	if f <= 0 {
		f = 1
	}
	return f * float64(count) * m.RefinementProbability(mbr, count, bits) * m.ExactLookupCost()
}

// DirectoryCost returns T1st (Eq. 22): one seek plus the sequential
// transfer of n directory entries.
func (m *Model) DirectoryCost(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.Disk.Seek + float64(m.Disk.Blocks(n*m.DirEntryBytes))*m.Disk.Xfer
}

// ExpectedPageAccesses returns k, the expected number of second-level
// pages a nearest-neighbor query must read out of n (Eq. 16–18), under the
// fractal model with an average (cubic) page region.
func (m *Model) ExpectedPageAccesses(n int) float64 {
	if n <= 0 {
		return 0
	}
	vds := m.volume(m.DataSpace)
	dOverDF := float64(m.Dim) / m.FractalDim
	vMBR := math.Pow(1/float64(n), dOverDF) * vds      // Eq. 16
	vNN := math.Pow(m.k()/float64(m.N), dOverDF) * vds // Eq. 17 (k-NN extension)
	var r float64
	if m.euclidean() {
		r = mathx.SphereRadius(m.Dim, vNN)
	} else {
		r = mathx.CubeRadius(m.Dim, vNN)
	}
	a := math.Pow(vMBR, 1/float64(m.Dim)) // cubic average page side
	sides := make([]float64, m.Dim)
	for i := range sides {
		sides[i] = a
	}
	var vMink float64
	if m.euclidean() {
		vMink = mathx.MinkowskiBoxSphereEucl(sides, r)
	} else {
		vMink = mathx.MinkowskiBoxSphereMax(sides, r)
	}
	k := float64(n) * math.Pow(vMink/vds, m.FractalDim/float64(m.Dim)) // Eq. 18
	return mathx.Clamp(k, 1, float64(n))
}

// SecondLevelCost returns T2nd (Eq. 19–21): the expected time of reading k
// out of n quantized pages with the optimized page-access strategy,
// assuming the k pages are uniformly spread over the file. Gaps up to the
// over-read horizon are read through; larger gaps seek.
func (m *Model) SecondLevelCost(n int) float64 {
	if n <= 0 {
		return 0
	}
	k := m.ExpectedPageAccesses(n)
	return m.optimizedReadCost(n, k)
}

// optimizedReadCost evaluates Eq. 21 numerically for k pages to load out
// of n. The page transfer unit is one quantized page (QPageBlocks blocks).
func (m *Model) optimizedReadCost(n int, k float64) float64 {
	tp := float64(m.QPageBlocks) * m.Disk.Xfer // transfer time of one page
	if k >= float64(n) {
		// Degenerates to a full scan of the second level.
		return m.Disk.Seek + float64(n)*tp
	}
	v := 0
	if tp > 0 {
		v = int(m.Disk.Seek / tp)
	}
	// Geometric gap distribution: P(gap = a) = q^(a-1)·(1-q), a ≥ 1.
	q := 1 - k/float64(n)
	var perPage float64
	pow := 1.0 // q^(a-1)
	for a := 1; a <= v; a++ {
		pGap := pow * (1 - q)
		perPage += pGap * float64(a) * tp
		pow *= q
	}
	// pow is now q^v: probability the gap exceeds the horizon → seek.
	perPage += pow * (m.Disk.Seek + tp)
	first := m.Disk.Seek + tp
	if k < 1 {
		k = 1
	}
	return first + (k-1)*perPage
}

// Total evaluates the full model (Eq. 23) for a concrete set of quantized
// pages: directory scan + optimized second-level read + per-page
// refinement cost.
func (m *Model) Total(pages []PageInfo) float64 {
	n := len(pages)
	t := m.DirectoryCost(n) + m.SecondLevelCost(n)
	for _, p := range pages {
		t += m.RefinementCost(p.MBR, p.Count, p.Bits)
	}
	return t
}
