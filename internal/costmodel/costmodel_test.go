package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quantize"
	"repro/internal/store"
	"repro/internal/vec"
)

func testModel(d int, met vec.Metric) *Model {
	lo := make(vec.Point, d)
	hi := make(vec.Point, d)
	for i := range hi {
		hi[i] = 1
	}
	return &Model{
		Disk:          store.DefaultConfig(),
		Metric:        met,
		Dim:           d,
		N:             100000,
		FractalDim:    float64(d),
		DataSpace:     vec.MBR{Lo: lo, Hi: hi},
		DirEntryBytes: 24 + 8*d,
		QPageBlocks:   1,
		ExactBlocks:   1,
	}
}

func cube(d int, side float32) vec.MBR {
	lo := make(vec.Point, d)
	hi := make(vec.Point, d)
	for i := range hi {
		hi[i] = side
	}
	return vec.MBR{Lo: lo, Hi: hi}
}

func TestPointDensityUniform(t *testing.T) {
	m := testModel(4, vec.Euclidean)
	// 1000 points in a 0.5^4 box: density = 1000 / 0.0625 = 16000.
	rho := m.PointDensity(cube(4, 0.5), 1000)
	if math.Abs(rho-16000) > 1 {
		t.Fatalf("density %f, want 16000", rho)
	}
}

func TestNNRadiusContainsOneExpectedPoint(t *testing.T) {
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum} {
		m := testModel(6, met)
		box := cube(6, 0.5)
		count := 5000
		r := m.NNRadius(box, count)
		if r <= 0 {
			t.Fatalf("radius %f", r)
		}
		// The query ball of radius r at the local density must contain an
		// expectation of exactly one point: rho * V(r) == 1.
		rho := m.PointDensity(box, count)
		var vol float64
		if met == vec.Euclidean {
			vol = math.Pow(math.SqrtPi*r, 6) / math.Gamma(4)
		} else {
			vol = math.Pow(2*r, 6)
		}
		if math.Abs(rho*vol-1) > 1e-6 {
			t.Fatalf("%v: expected points in NN ball = %f, want 1", met, rho*vol)
		}
	}
}

// Property (paper Sec. 3.4 "Properties of the cost functions"): the
// refinement probability decreases monotonically in the quantization
// level, and the improvement per doubling shrinks (convexity); it is 0 at
// the exact level.
func TestRefinementProbabilityMonotoneConvex(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, met := range []vec.Metric{vec.Euclidean, vec.Maximum} {
		for trial := 0; trial < 50; trial++ {
			d := 2 + r.Intn(12)
			m := testModel(d, met)
			m.FractalDim = 1 + r.Float64()*float64(d-1)
			box := cube(d, float32(0.2+r.Float64()*0.5))
			count := 100 + r.Intn(2000)
			var probs []float64
			for _, g := range quantize.Levels {
				probs = append(probs, m.RefinementProbability(box, count, g))
			}
			last := probs[len(probs)-1]
			if last != 0 {
				t.Fatalf("P at 32 bits = %f, want 0", last)
			}
			for i := 1; i < len(probs); i++ {
				if probs[i] > probs[i-1]+1e-12 {
					t.Fatalf("%v d=%d: P not monotone: %v", met, d, probs)
				}
			}
			// Convexity in the level index (away from the clamp at 1):
			// improvements shrink as g doubles.
			for i := 2; i < len(probs)-1; i++ {
				if probs[i-1] >= 1 || probs[i-2] >= 1 {
					continue // clamped region
				}
				d1 := probs[i-2] - probs[i-1]
				d2 := probs[i-1] - probs[i]
				if d2 > d1+1e-9 {
					t.Fatalf("%v d=%d: improvements grow: %v", met, d, probs)
				}
			}
		}
	}
}

// Property: splitting a page (halving count and volume) never increases
// the total refinement cost at the doubled level — the variable-cost
// benefit of Sec. 3.5 is non-negative under the model's assumptions.
func TestSplitBenefitNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		d := 2 + r.Intn(10)
		m := testModel(d, vec.Euclidean)
		side := float32(0.2 + r.Float64()*0.6)
		box := cube(d, side)
		count := 256 + r.Intn(1024)
		g := []int{1, 2, 4, 8}[r.Intn(4)]
		parent := m.RefinementCost(box, count, g)
		// Split along dimension 0 at the midpoint.
		left := box.Clone()
		left.Hi[0] = side / 2
		children := 2 * m.RefinementCost(left, count/2, 2*g)
		if children > parent*1.0001+1e-12 {
			t.Fatalf("d=%d g=%d: children cost %g > parent %g", d, g, children, parent)
		}
	}
}

func TestDirectoryCostLinear(t *testing.T) {
	m := testModel(8, vec.Euclidean)
	if m.DirectoryCost(0) != 0 {
		t.Fatal("empty directory should cost 0")
	}
	c1 := m.DirectoryCost(1000)
	c2 := m.DirectoryCost(2000)
	// Linear in n up to the fixed seek.
	growth := (c2 - m.Disk.Seek) / (c1 - m.Disk.Seek)
	if math.Abs(growth-2) > 0.05 {
		t.Fatalf("directory cost growth %f, want ~2", growth)
	}
}

func TestExpectedPageAccessesBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		d := 2 + r.Intn(14)
		m := testModel(d, vec.Euclidean)
		m.FractalDim = 1 + r.Float64()*float64(d-1)
		n := 10 + r.Intn(5000)
		k := m.ExpectedPageAccesses(n)
		if k < 1 || k > float64(n) {
			t.Fatalf("k = %f outside [1, %d]", k, n)
		}
	}
	if m := testModel(4, vec.Euclidean); m.ExpectedPageAccesses(0) != 0 {
		t.Fatal("no pages should give 0")
	}
}

func TestExpectedPageAccessesGrowsWithDimension(t *testing.T) {
	// The curse of dimensionality: for fixed n and N, higher dimension
	// means a larger fraction of pages must be read.
	kAt := func(d int) float64 {
		m := testModel(d, vec.Euclidean)
		return m.ExpectedPageAccesses(1000)
	}
	if !(kAt(2) < kAt(8) && kAt(8) < kAt(16)) {
		t.Fatalf("k not growing with dimension: %f %f %f", kAt(2), kAt(8), kAt(16))
	}
}

func TestSecondLevelCostBounds(t *testing.T) {
	m := testModel(16, vec.Euclidean)
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		c := m.SecondLevelCost(n)
		k := m.ExpectedPageAccesses(n)
		// Never cheaper than reading k pages sequentially after one seek,
		// never costlier than k random reads.
		tp := float64(m.QPageBlocks) * m.Disk.Xfer
		lo := m.Disk.Seek + k*tp
		hi := k*(m.Disk.Seek+tp) + 1e-9
		if c < lo-1e-9 || c > hi {
			t.Fatalf("n=%d: cost %f outside [%f, %f]", n, c, lo, hi)
		}
	}
	if m.SecondLevelCost(0) != 0 {
		t.Fatal("no pages should cost 0")
	}
}

func TestTotalSumsComponents(t *testing.T) {
	m := testModel(8, vec.Euclidean)
	pages := []PageInfo{
		{MBR: cube(8, 0.3), Count: 500, Bits: 2},
		{MBR: cube(8, 0.2), Count: 300, Bits: 8},
		{MBR: cube(8, 0.1), Count: 60, Bits: 32},
	}
	want := m.DirectoryCost(3) + m.SecondLevelCost(3)
	for _, p := range pages {
		want += m.RefinementCost(p.MBR, p.Count, p.Bits)
	}
	if got := m.Total(pages); math.Abs(got-want) > 1e-12 {
		t.Fatalf("total %f, want %f", got, want)
	}
}

func TestRefineFactorScalesCost(t *testing.T) {
	m := testModel(8, vec.Euclidean)
	box := cube(8, 0.3)
	base := m.RefinementCost(box, 500, 2)
	m.RefineFactor = 3
	if got := m.RefinementCost(box, 500, 2); math.Abs(got-3*base) > 1e-12 {
		t.Fatalf("factor not applied: %f vs 3·%f", got, base)
	}
}

func TestDegenerateMBRDoesNotBlowUp(t *testing.T) {
	m := testModel(4, vec.Euclidean)
	flat := vec.MBR{Lo: vec.Point{0, 0, 0.5, 0}, Hi: vec.Point{1, 1, 0.5, 1}} // flat dim 2
	p := m.RefinementProbability(flat, 100, 4)
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
		t.Fatalf("degenerate MBR probability %f", p)
	}
}

func TestFractalDimensionReducesPageAccesses(t *testing.T) {
	// Correlated data (low D_F) concentrates queries near the data pages'
	// own regions, reducing the expected accesses versus uniform.
	mu := testModel(16, vec.Euclidean)
	mf := testModel(16, vec.Euclidean)
	mf.FractalDim = 4
	if mf.ExpectedPageAccesses(2000) >= mu.ExpectedPageAccesses(2000) {
		t.Fatalf("fractal model should predict fewer page accesses: %f vs %f",
			mf.ExpectedPageAccesses(2000), mu.ExpectedPageAccesses(2000))
	}
}

func TestKNNExtensionGrowsRadiusAndAccesses(t *testing.T) {
	m1 := testModel(8, vec.Euclidean)
	m10 := testModel(8, vec.Euclidean)
	m10.K = 10
	box := cube(8, 0.4)
	r1 := m1.NNRadius(box, 1000)
	r10 := m10.NNRadius(box, 1000)
	if r10 <= r1 {
		t.Fatalf("k=10 radius %f should exceed k=1 radius %f", r10, r1)
	}
	// Expected points in the k-NN ball equals k.
	rho := m10.PointDensity(box, 1000)
	vol := math.Pow(math.SqrtPi*r10, 8) / math.Gamma(5)
	if math.Abs(rho*vol-10) > 1e-6 {
		t.Fatalf("expected points in 10-NN ball = %f", rho*vol)
	}
	if m10.ExpectedPageAccesses(500) <= m1.ExpectedPageAccesses(500) {
		t.Fatal("k=10 should access more pages")
	}
	if m10.RefinementProbability(box, 1000, 4) <= m1.RefinementProbability(box, 1000, 4) {
		t.Fatal("k=10 should refine more")
	}
}
