// Package mathx implements the numerical geometry behind the IQ-tree cost
// model: d-dimensional sphere volumes (paper Eq. 8–9), Minkowski sums of
// boxes and spheres (Eq. 11–12), and box∩sphere intersection volumes
// (Eq. 4–5), for both the Euclidean and the maximum metric.
package mathx

import (
	"math"
)

// SphereVolume returns the volume of a d-dimensional L2 ball of radius r
// (paper Eq. 8): V = √π^d · r^d / Γ(d/2 + 1).
func SphereVolume(d int, r float64) float64 {
	if r < 0 {
		return 0
	}
	return math.Pow(math.SqrtPi*r, float64(d)) / math.Gamma(float64(d)/2+1)
}

// CubeVolume returns the volume of a d-dimensional L∞ ball of radius r
// (paper Eq. 9): V = (2r)^d.
func CubeVolume(d int, r float64) float64 {
	if r < 0 {
		return 0
	}
	return math.Pow(2*r, float64(d))
}

// SphereRadius inverts SphereVolume: the radius of the d-dimensional L2
// ball with volume v (paper Eq. 7).
func SphereRadius(d int, v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Pow(v*math.Gamma(float64(d)/2+1), 1/float64(d)) / math.SqrtPi
}

// CubeRadius inverts CubeVolume: the radius of the d-dimensional L∞ ball
// with volume v.
func CubeRadius(d int, v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Pow(v, 1/float64(d)) / 2
}

// UnitBallVolume returns the volume of the unit ball of metric-kind k in
// d dimensions, where k selects Euclidean (true) or maximum (false).
func UnitBallVolume(d int, euclidean bool) float64 {
	if euclidean {
		return SphereVolume(d, 1)
	}
	return CubeVolume(d, 1)
}

// Binomial returns the binomial coefficient C(n, k) as a float64.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// ElementarySymmetric returns all elementary symmetric polynomials
// e_0..e_n of the values xs (e_0 = 1). It runs in O(n²).
func ElementarySymmetric(xs []float64) []float64 {
	e := make([]float64, len(xs)+1)
	e[0] = 1
	for _, x := range xs {
		for k := len(e) - 1; k >= 1; k-- {
			e[k] += e[k-1] * x
		}
	}
	return e
}

// MinkowskiBoxSphereMax returns the volume of the Minkowski sum of a box
// with the given side lengths and an L∞ ball of radius r (paper Eq. 11):
// Π (side_i + 2r).
func MinkowskiBoxSphereMax(sides []float64, r float64) float64 {
	v := 1.0
	for _, s := range sides {
		v *= s + 2*r
	}
	return v
}

// MinkowskiBoxSphereEucl returns the exact volume of the Minkowski sum of
// a box with the given side lengths and an L2 ball of radius r:
//
//	V = Σ_k e_{d−k}(sides) · V_k(r)
//
// where e_j are the elementary symmetric polynomials of the side lengths
// and V_k(r) is the k-dimensional sphere volume. For a cube (all sides a)
// this reduces to the paper's Eq. 12.
func MinkowskiBoxSphereEucl(sides []float64, r float64) float64 {
	d := len(sides)
	e := ElementarySymmetric(sides)
	var v float64
	for k := 0; k <= d; k++ {
		v += e[d-k] * SphereVolume(k, r)
	}
	return v
}

// MinkowskiBoxSphereEuclGeoMean returns the paper's Eq. 12 approximation of
// MinkowskiBoxSphereEucl, replacing the box by a cube whose side is the
// geometric mean a of the box sides:
//
//	V ≈ Σ_k C(d,k) a^k (√π r)^{d−k} / Γ((d−k)/2 + 1).
func MinkowskiBoxSphereEuclGeoMean(sides []float64, r float64) float64 {
	d := len(sides)
	a := GeometricMean(sides)
	var v float64
	for k := 0; k <= d; k++ {
		v += Binomial(d, k) * math.Pow(a, float64(k)) * SphereVolume(d-k, r)
	}
	return v
}

// GeometricMean returns the geometric mean of xs (0 if any value is ≤ 0,
// matching the degenerate-box convention of the cost model).
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
