package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxSphereIntersectMaxKnownCases(t *testing.T) {
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	// L∞ ball around the center with radius 0.25 lies fully inside.
	if got := BoxSphereIntersectMax(lo, hi, []float64{0.5, 0.5}, 0.25); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("inside cube: %f, want 0.25", got)
	}
	// Ball covering the whole box.
	if got := BoxSphereIntersectMax(lo, hi, []float64{0.5, 0.5}, 10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("covering cube: %f, want 1", got)
	}
	// Disjoint.
	if got := BoxSphereIntersectMax(lo, hi, []float64{5, 5}, 1); got != 0 {
		t.Fatalf("disjoint: %f, want 0", got)
	}
	// Corner overlap: query at the origin corner with r=0.5 overlaps a
	// quarter... for L∞ the overlap is [0,0.5]² = 0.25.
	if got := BoxSphereIntersectMax(lo, hi, []float64{0, 0}, 0.5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("corner: %f, want 0.25", got)
	}
}

func TestBoxSphereIntersectEuclFullContainment(t *testing.T) {
	// Ball fully inside the box: volume must equal the sphere volume.
	lo := []float64{-10, -10, -10}
	hi := []float64{10, 10, 10}
	got := BoxSphereIntersectEucl(lo, hi, []float64{0, 0, 0}, 1)
	want := SphereVolume(3, 1)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("contained ball: %f, want ≈%f", got, want)
	}
	// Box fully inside the ball: exact (detected analytically).
	lo2 := []float64{-0.1, -0.1, -0.1}
	hi2 := []float64{0.1, 0.1, 0.1}
	got = BoxSphereIntersectEucl(lo2, hi2, []float64{0, 0, 0}, 5)
	if math.Abs(got-0.008) > 1e-12 {
		t.Fatalf("contained box: %f, want 0.008", got)
	}
	// Disjoint.
	if got := BoxSphereIntersectEucl(lo2, hi2, []float64{9, 9, 9}, 1); got != 0 {
		t.Fatalf("disjoint: %f", got)
	}
}

func TestBoxSphereIntersectEuclHalfBall(t *testing.T) {
	// Query centered on a face: the intersection is half the ball.
	lo := []float64{0, -10}
	hi := []float64{10, 10}
	got := BoxSphereIntersectEucl(lo, hi, []float64{0, 0}, 1)
	want := SphereVolume(2, 1) / 2
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("half ball: %f, want ≈%f", got, want)
	}
}

// Property: the intersection volume is bounded by both the clipped box
// volume and the ball volume, never exceeds the L∞ intersection, and is
// monotone in r.
func TestBoxSphereIntersectProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(6)
		lo := make([]float64, d)
		hi := make([]float64, d)
		q := make([]float64, d)
		box := 1.0
		for i := 0; i < d; i++ {
			lo[i] = r.Float64()
			hi[i] = lo[i] + 0.05 + r.Float64()
			q[i] = r.Float64()*2 - 0.5
			box *= hi[i] - lo[i]
		}
		rad := 0.05 + r.Float64()
		eucl := BoxSphereIntersectEucl(lo, hi, q, rad)
		maxm := BoxSphereIntersectMax(lo, hi, q, rad)
		if eucl < 0 || eucl > box+1e-9 || eucl > SphereVolume(d, rad)+1e-9 {
			t.Fatalf("eucl volume %f out of bounds (box %f, sphere %f)", eucl, box, SphereVolume(d, rad))
		}
		if eucl > maxm+1e-9 {
			t.Fatalf("eucl intersection %f exceeds max-metric %f", eucl, maxm)
		}
		if bigger := BoxSphereIntersectEucl(lo, hi, q, rad*2); bigger < eucl-1e-9 {
			t.Fatalf("intersection not monotone in r")
		}
	}
}

func TestBoxSphereIntersectDispatch(t *testing.T) {
	lo := []float64{0}
	hi := []float64{1}
	q := []float64{0.5}
	if got := BoxSphereIntersect(lo, hi, q, 0.25, false); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("max dispatch: %f", got)
	}
	// In 1-d the L2 and L∞ balls coincide; the QMC estimate detects full
	// containment analytically here.
	if got := BoxSphereIntersect(lo, hi, q, 0.25, true); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("eucl dispatch: %f", got)
	}
}

func TestHaltonDeterministicAndInUnitInterval(t *testing.T) {
	for i := 1; i < 200; i++ {
		v := halton(i, 2)
		if v <= 0 || v >= 1 {
			t.Fatalf("halton(%d, 2) = %f out of (0,1)", i, v)
		}
		if v != halton(i, 2) {
			t.Fatal("halton not deterministic")
		}
	}
	// First few base-2 values are the van der Corput sequence.
	want := []float64{0.5, 0.25, 0.75, 0.125}
	for i, w := range want {
		if got := halton(i+1, 2); math.Abs(got-w) > 1e-12 {
			t.Fatalf("halton(%d,2) = %f, want %f", i+1, got, w)
		}
	}
}
