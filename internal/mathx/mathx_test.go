package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSphereVolumeKnownValues(t *testing.T) {
	cases := []struct {
		d    int
		r    float64
		want float64
	}{
		{1, 1, 2},               // interval of length 2
		{2, 1, math.Pi},         // unit disk
		{3, 1, 4 * math.Pi / 3}, // unit ball
		{2, 2, 4 * math.Pi},     // scaled disk
		{3, 0.5, math.Pi / 6},   // scaled ball
		{4, 1, math.Pi * math.Pi / 2},
	}
	for _, c := range cases {
		if got := SphereVolume(c.d, c.r); math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("SphereVolume(%d, %f) = %f, want %f", c.d, c.r, got, c.want)
		}
	}
	if SphereVolume(3, -1) != 0 {
		t.Error("negative radius should give 0")
	}
}

func TestCubeVolume(t *testing.T) {
	if got := CubeVolume(3, 0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("CubeVolume(3, 0.5) = %f, want 1", got)
	}
	if got := CubeVolume(2, 2); math.Abs(got-16) > 1e-12 {
		t.Errorf("CubeVolume(2, 2) = %f, want 16", got)
	}
}

// Property: SphereRadius inverts SphereVolume and CubeRadius inverts
// CubeVolume across dimensions and radii.
func TestRadiusVolumeRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		d := 1 + r.Intn(20)
		radius := 0.01 + r.Float64()*5
		if got := SphereRadius(d, SphereVolume(d, radius)); math.Abs(got-radius) > 1e-9*radius {
			t.Fatalf("sphere roundtrip d=%d r=%f got %f", d, radius, got)
		}
		if got := CubeRadius(d, CubeVolume(d, radius)); math.Abs(got-radius) > 1e-9*radius {
			t.Fatalf("cube roundtrip d=%d r=%f got %f", d, radius, got)
		}
	}
	if SphereRadius(3, 0) != 0 || CubeRadius(3, -1) != 0 {
		t.Fatal("non-positive volumes should give radius 0")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {5, 6, 0}, {5, -1, 0}}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %f, want %f", c.n, c.k, got, c.want)
		}
	}
}

func TestElementarySymmetric(t *testing.T) {
	e := ElementarySymmetric([]float64{1, 2, 3})
	want := []float64{1, 6, 11, 6}
	for i := range want {
		if math.Abs(e[i]-want[i]) > 1e-12 {
			t.Fatalf("e[%d] = %f, want %f", i, e[i], want[i])
		}
	}
}

// Property: for a cube, the exact Minkowski sum equals the paper's
// geometric-mean approximation (they coincide when all sides are equal).
func TestMinkowskiCubeAgreement(t *testing.T) {
	f := func(sideSeed, rSeed uint8, dSeed uint8) bool {
		d := 1 + int(dSeed)%10
		side := 0.1 + float64(sideSeed)/64
		r := float64(rSeed) / 128
		sides := make([]float64, d)
		for i := range sides {
			sides[i] = side
		}
		exact := MinkowskiBoxSphereEucl(sides, r)
		approx := MinkowskiBoxSphereEuclGeoMean(sides, r)
		return math.Abs(exact-approx) <= 1e-9*math.Max(exact, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the Minkowski sum volume is at least the box volume and at
// least the sphere volume, and grows monotonically with r.
func TestMinkowskiBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		d := 1 + r.Intn(8)
		sides := make([]float64, d)
		box := 1.0
		for i := range sides {
			sides[i] = 0.05 + r.Float64()
			box *= sides[i]
		}
		rad := r.Float64()
		eucl := MinkowskiBoxSphereEucl(sides, rad)
		if eucl < box-1e-12 || eucl < SphereVolume(d, rad)-1e-12 {
			t.Fatalf("Minkowski eucl %f below box %f or sphere %f", eucl, box, SphereVolume(d, rad))
		}
		if bigger := MinkowskiBoxSphereEucl(sides, rad*1.5+0.01); bigger <= eucl {
			t.Fatalf("Minkowski sum not monotone in r")
		}
		maxm := MinkowskiBoxSphereMax(sides, rad)
		if maxm < box-1e-12 || maxm < CubeVolume(d, rad)-1e-12 {
			t.Fatalf("Minkowski max %f below box or cube", maxm)
		}
		// L∞ ball contains the L2 ball, so its Minkowski sum is larger.
		if maxm < eucl-1e-9 {
			t.Fatalf("max-metric Minkowski %f smaller than euclidean %f", maxm, eucl)
		}
	}
}

func TestMinkowskiZeroRadiusIsBoxVolume(t *testing.T) {
	sides := []float64{1, 2, 3}
	if got := MinkowskiBoxSphereEucl(sides, 0); math.Abs(got-6) > 1e-12 {
		t.Fatalf("eucl r=0: %f", got)
	}
	if got := MinkowskiBoxSphereMax(sides, 0); math.Abs(got-6) > 1e-12 {
		t.Fatalf("max r=0: %f", got)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("geometric mean %f, want 4", got)
	}
	if GeometricMean(nil) != 0 || GeometricMean([]float64{1, 0}) != 0 {
		t.Fatal("degenerate geometric means should be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp wrong")
	}
}
