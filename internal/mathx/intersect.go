package mathx

import (
	"math"
)

// BoxSphereIntersectMax returns the volume of the intersection of the box
// [lo, hi] with the L∞ ball of radius r around center q (paper Eq. 5):
//
//	V = Π max(0, min(hi_i, q_i+r) − max(lo_i, q_i−r)).
func BoxSphereIntersectMax(lo, hi, q []float64, r float64) float64 {
	v := 1.0
	for i := range lo {
		a := math.Max(lo[i], q[i]-r)
		b := math.Min(hi[i], q[i]+r)
		if b <= a {
			return 0
		}
		v *= b - a
	}
	return v
}

// halton returns element i of the Halton low-discrepancy sequence in the
// given prime base, in (0, 1).
func halton(i int, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// primes holds the first 64 primes, enough Halton bases for up to 64
// dimensions.
var primes = [64]int{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
	59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
	137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
	227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311,
}

// BoxSphereIntersectEuclSamples is the quasi-Monte-Carlo sample count used
// by BoxSphereIntersectEucl. 256 Halton samples keep the estimate
// deterministic and within a few percent on the volumes the cost model
// consumes (the paper only needs the estimate "using approximations").
const BoxSphereIntersectEuclSamples = 256

// BoxSphereIntersectEucl estimates the volume of the intersection of the
// box [lo, hi] with the L2 ball of radius r around q (paper Eq. 4). It
// clips the box by the ball's bounding box and integrates the ball
// indicator with a deterministic Halton quasi-Monte-Carlo rule, so repeated
// calls are reproducible. Dimensionalities above 64 fall back to the L∞
// upper bound.
func BoxSphereIntersectEucl(lo, hi, q []float64, r float64) float64 {
	d := len(lo)
	if d > len(primes) {
		return BoxSphereIntersectMax(lo, hi, q, r)
	}
	// Clip the box to the ball's bounding box; the remainder is where the
	// indicator can be non-zero.
	clo := make([]float64, d)
	chi := make([]float64, d)
	clipVol := 1.0
	for i := 0; i < d; i++ {
		clo[i] = math.Max(lo[i], q[i]-r)
		chi[i] = math.Min(hi[i], q[i]+r)
		if chi[i] <= clo[i] {
			return 0
		}
		clipVol *= chi[i] - clo[i]
	}
	// If the clipped box is entirely inside the ball, the intersection is
	// the clipped box itself. Check the farthest corner.
	var farSq float64
	for i := 0; i < d; i++ {
		a := q[i] - clo[i]
		b := chi[i] - q[i]
		m := math.Max(math.Abs(a), math.Abs(b))
		farSq += m * m
	}
	if farSq <= r*r {
		return clipVol
	}
	rr := r * r
	hits := 0
	x := make([]float64, d)
	for s := 1; s <= BoxSphereIntersectEuclSamples; s++ {
		var distSq float64
		for i := 0; i < d; i++ {
			x[i] = clo[i] + halton(s, primes[i])*(chi[i]-clo[i])
			dv := x[i] - q[i]
			distSq += dv * dv
		}
		if distSq <= rr {
			hits++
		}
	}
	return clipVol * float64(hits) / float64(BoxSphereIntersectEuclSamples)
}

// BoxSphereContainFracEucl returns the fraction of the box [lo, hi]
// inside the L2 ball of radius r around q — P(‖X − q‖ ≤ r) for X
// uniform in the box — via a central-limit normal approximation of the
// squared distance Σ(X_i − q_i)²: per-dimension coordinates are
// independent and uniform, so the sum's mean and variance have closed
// forms and the sum itself is approximately normal (the classic
// high-dimensional cost-model device). The estimate is smooth and
// monotone in r and — unlike sample-based integration — never collapses
// to zero on the thin intersections that dominate high-dimensional
// nearest-neighbor spheres, where even a low-discrepancy rule's every
// sample misses the ball.
func BoxSphereContainFracEucl(lo, hi, q []float64, r float64) float64 {
	rr := r * r
	var mu, va, nearSq, farSq float64
	for i := range lo {
		a, b := lo[i]-q[i], hi[i]-q[i]
		// E[u²] and E[u⁴] for u uniform on [a, b], division-free forms.
		m2 := (a*a + a*b + b*b) / 3
		m4 := (a*a*a*a + a*a*a*b + a*a*b*b + a*b*b*b + b*b*b*b) / 5
		mu += m2
		va += m4 - m2*m2
		lm := math.Max(math.Abs(a), math.Abs(b))
		farSq += lm * lm
		if a > 0 {
			nearSq += a * a
		} else if b < 0 {
			nearSq += b * b
		}
	}
	if farSq <= rr {
		return 1 // box entirely inside the ball
	}
	if nearSq >= rr {
		return 0 // box entirely outside the ball
	}
	if va <= 0 {
		if mu <= rr {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((mu-rr)/math.Sqrt(2*va))
}

// BoxSphereIntersect dispatches on the metric kind: euclidean selects the
// quasi-Monte-Carlo L2 estimate, otherwise the exact L∞ product form.
func BoxSphereIntersect(lo, hi, q []float64, r float64, euclidean bool) float64 {
	if euclidean {
		return BoxSphereIntersectEucl(lo, hi, q, r)
	}
	return BoxSphereIntersectMax(lo, hi, q, r)
}

// BoxSphereIntersectEuclFast approximates the box ∩ L2-ball volume by
// replacing the ball with the L∞ ball (cube) of equal volume, then using
// the exact product form. This is the classic cost-model surrogate (used
// where the estimate feeds a heuristic, such as the page scheduler's
// access probabilities): it preserves total volume and monotonicity in r
// at a tiny fraction of the quasi-Monte-Carlo cost.
func BoxSphereIntersectEuclFast(lo, hi, q []float64, r float64) float64 {
	d := len(lo)
	req := CubeRadius(d, SphereVolume(d, r))
	return BoxSphereIntersectMax(lo, hi, q, req)
}
