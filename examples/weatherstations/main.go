// Weatherstations: similarity search over 9-dimensional weather-station
// observations — the paper's WEATHER workload, highly clustered with a
// low fractal dimension. On such data a hierarchical index keeps its
// selectivity, and the example shows how the IQ-tree's cost model detects
// this (low D_F, fine quantization on dense pages) and how the three
// access methods compare.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const dbSize = 80000
	all := repro.GenWeather(3, dbSize+10)
	db, queries := repro.SplitDataset(all, 10)

	fmt.Printf("weather database: %d observations, 9 features\n", dbSize)
	fmt.Printf("correlation fractal dimension D2 = %.2f (embedding d = 9)\n\n",
		repro.FractalDimension(db, repro.Euclidean))

	iqStore := repro.NewStore(repro.DefaultStoreConfig())
	xStore := repro.NewStore(repro.DefaultStoreConfig())
	vaStore := repro.NewStore(repro.DefaultStoreConfig())

	tree, err := repro.BuildIQTree(iqStore, db, repro.DefaultIQTreeOptions())
	if err != nil {
		log.Fatal(err)
	}
	xt, err := repro.BuildXTree(xStore, db, repro.DefaultXTreeOptions())
	if err != nil {
		log.Fatal(err)
	}
	va, err := repro.BuildVAFile(vaStore, db, repro.DefaultVAFileOptions())
	if err != nil {
		log.Fatal(err)
	}

	st := tree.Stats()
	fmt.Printf("IQ-tree adapted itself to the clustering: %d pages, bits %v\n",
		st.Pages, st.BitsHistogram)
	xst := xt.Stats()
	fmt.Printf("X-tree: %d leaves, %d supernodes, height %d\n\n",
		xst.Leaves, xst.Supernodes, xst.Height)

	var iqT, xT, vaT float64
	for _, q := range queries {
		s := iqStore.NewSession()
		if _, err := tree.KNN(s, q, 3); err != nil {
			log.Fatal(err)
		}
		iqT += s.Time()

		s = xStore.NewSession()
		if _, err := xt.KNN(s, q, 3); err != nil {
			log.Fatal(err)
		}
		xT += s.Time()

		s = vaStore.NewSession()
		if _, err := va.KNN(s, q, 3); err != nil {
			log.Fatal(err)
		}
		vaT += s.Time()
	}
	n := float64(len(queries))
	fmt.Println("average simulated seconds per 3-NN query:")
	fmt.Printf("  IQ-tree  %.4f\n", iqT/n)
	fmt.Printf("  X-tree   %.4f   (hierarchical search still works here)\n", xT/n)
	fmt.Printf("  VA-file  %.4f   (must scan every approximation)\n", vaT/n)

	// Find stations with near-identical conditions to the first query.
	s := iqStore.NewSession()
	similar, err := tree.RangeSearch(s, queries[0], 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d observations within 0.05 of query 0 (%.4fs simulated)\n",
		len(similar), s.Time())
}
