// Cadsearch: find CAD objects with similar contours — the paper's CAD
// workload (16-dimensional Fourier coefficients of curvature, moderately
// clustered). The example demonstrates the maintenance path too: new
// parts arrive, get inserted dynamically, and the page that overflows is
// either split or re-quantized at a coarser level, whichever the cost
// model predicts to be cheaper (paper Section 6).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const dbSize = 40000
	all := repro.GenCAD(11, dbSize+1005)
	db, rest := repro.SplitDataset(all, 1005)
	newParts, queries := rest[:1000], rest[1000:]

	sto := repro.NewStore(repro.DefaultStoreConfig())
	tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		log.Fatal(err)
	}
	st := tree.Stats()
	fmt.Printf("CAD part database: %d contours (16 Fourier coefficients each)\n", dbSize)
	fmt.Printf("IQ-tree: %d pages, bits %v, D_F=%.2f\n\n", st.Pages, st.BitsHistogram, st.FractalDim)

	q := queries[0]
	s := sto.NewSession()
	before, err := tree.KNN(s, q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 most similar parts before the delivery (%.4fs simulated):\n", s.Time())
	for _, nb := range before {
		fmt.Printf("  part#%-6d dist=%.4f\n", nb.ID, nb.Dist)
	}

	// A batch of new parts arrives and is inserted dynamically.
	maint := sto.NewSession()
	for i, p := range newParts {
		if err := tree.Insert(maint, p, uint32(dbSize+i)); err != nil {
			log.Fatal(err)
		}
	}
	// Insert swallows nothing, but the sticky session error is the
	// cheap way to confirm the whole maintenance batch stayed clean.
	if err := maint.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted %d new parts (maintenance I/O: %.2fs simulated)\n",
		len(newParts), maint.Time())
	st = tree.Stats()
	fmt.Printf("tree after inserts: %d points, %d pages, bits %v\n\n",
		st.Points, st.Pages, st.BitsHistogram)

	s = sto.NewSession()
	after, err := tree.KNN(s, q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 most similar parts after the delivery (%.4fs simulated):\n", s.Time())
	for _, nb := range after {
		tag := ""
		if nb.ID >= dbSize {
			tag = "  <- newly inserted"
		}
		fmt.Printf("  part#%-6d dist=%.4f%s\n", nb.ID, nb.Dist, tag)
	}

	// Retire the closest match and verify it no longer appears.
	s = sto.NewSession()
	found, err := tree.Delete(s, after[0].Point, after[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		log.Fatal("delete failed")
	}
	s = sto.NewSession()
	again, err := tree.KNN(s, q, 1)
	if err != nil {
		log.Fatal(err)
	}
	if len(again) == 0 {
		log.Fatal("no parts left after retirement")
	}
	fmt.Printf("\nafter retiring part#%d the best match is part#%d (dist %.4f)\n",
		after[0].ID, again[0].ID, again[0].Dist)
}
