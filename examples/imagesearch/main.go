// Imagesearch: content-based image retrieval over 16-dimensional color
// histograms — the COLOR workload that motivates the paper's evaluation.
// The example builds an IQ-tree over a histogram database, retrieves the
// most similar "images" for a few query histograms, and contrasts the
// simulated cost against a sequential scan and a hand-tuned VA-file.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const dbSize = 60000
	all := repro.GenColor(7, dbSize+5)
	db, queries := repro.SplitDataset(all, 5)

	// One simulated store per access method, so the layouts don't interact.
	iqStore := repro.NewStore(repro.DefaultStoreConfig())
	scanStore := repro.NewStore(repro.DefaultStoreConfig())
	vaStore := repro.NewStore(repro.DefaultStoreConfig())

	tree, err := repro.BuildIQTree(iqStore, db, repro.DefaultIQTreeOptions())
	if err != nil {
		log.Fatal(err)
	}
	flat, err := repro.BuildScan(scanStore, db, repro.Euclidean)
	if err != nil {
		log.Fatal(err)
	}
	vaOpt := repro.DefaultVAFileOptions()
	vaOpt.Bits = 6 // the kind of manual tuning the paper criticizes
	va, err := repro.BuildVAFile(vaStore, db, vaOpt)
	if err != nil {
		log.Fatal(err)
	}

	st := tree.Stats()
	fmt.Printf("image database: %d histograms, 16 bins\n", dbSize)
	fmt.Printf("IQ-tree: %d pages, bits histogram %v, D_F = %.2f\n\n",
		st.Pages, st.BitsHistogram, st.FractalDim)

	var iqT, scanT, vaT float64
	for i, q := range queries {
		s := iqStore.NewSession()
		hits, err := tree.KNN(s, q, 10)
		if err != nil {
			log.Fatal(err)
		}
		iqT += s.Time()
		fmt.Printf("query image %d — 10 most similar (IQ-tree, %.4fs):", i, s.Time())
		top := hits
		if len(top) > 3 {
			top = top[:3]
		}
		for _, h := range top {
			fmt.Printf("  img#%d(%.3f)", h.ID, h.Dist)
		}
		fmt.Println(" ...")

		s = scanStore.NewSession()
		if _, err := flat.KNN(s, q, 10); err != nil {
			log.Fatal(err)
		}
		scanT += s.Time()

		s = vaStore.NewSession()
		if _, err := va.KNN(s, q, 10); err != nil {
			log.Fatal(err)
		}
		vaT += s.Time()
	}
	n := float64(len(queries))
	fmt.Printf("\naverage simulated seconds per 10-NN query:\n")
	fmt.Printf("  IQ-tree          %.4f\n", iqT/n)
	fmt.Printf("  VA-file (6 bit)  %.4f   (%.1fx slower)\n", vaT/n, vaT/iqT)
	fmt.Printf("  sequential scan  %.4f   (%.1fx slower)\n", scanT/n, scanT/iqT)
}
