// Imagesearch: content-based image retrieval over 16-dimensional color
// histograms — the COLOR workload that motivates the paper's evaluation.
// The example builds an IQ-tree over a histogram database, retrieves the
// most similar "images" for a few query histograms, and contrasts the
// simulated cost against a sequential scan and a hand-tuned VA-file.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const dbSize = 60000
	all := repro.GenColor(7, dbSize+5)
	db, queries := repro.SplitDataset(all, 5)

	// One simulated disk per access method, so the layouts don't interact.
	iqDisk := repro.NewDisk(repro.DefaultDiskConfig())
	scanDisk := repro.NewDisk(repro.DefaultDiskConfig())
	vaDisk := repro.NewDisk(repro.DefaultDiskConfig())

	tree, err := repro.BuildIQTree(iqDisk, db, repro.DefaultIQTreeOptions())
	if err != nil {
		log.Fatal(err)
	}
	flat := repro.BuildScan(scanDisk, db, repro.Euclidean)
	vaOpt := repro.DefaultVAFileOptions()
	vaOpt.Bits = 6 // the kind of manual tuning the paper criticizes
	va := repro.BuildVAFile(vaDisk, db, vaOpt)

	st := tree.Stats()
	fmt.Printf("image database: %d histograms, 16 bins\n", dbSize)
	fmt.Printf("IQ-tree: %d pages, bits histogram %v, D_F = %.2f\n\n",
		st.Pages, st.BitsHistogram, st.FractalDim)

	var iqT, scanT, vaT float64
	for i, q := range queries {
		s := iqDisk.NewSession()
		hits := tree.KNN(s, q, 10)
		iqT += s.Time()
		fmt.Printf("query image %d — 10 most similar (IQ-tree, %.4fs):", i, s.Time())
		for _, h := range hits[:3] {
			fmt.Printf("  img#%d(%.3f)", h.ID, h.Dist)
		}
		fmt.Println(" ...")

		s = scanDisk.NewSession()
		flat.KNN(s, q, 10)
		scanT += s.Time()

		s = vaDisk.NewSession()
		va.KNN(s, q, 10)
		vaT += s.Time()
	}
	n := float64(len(queries))
	fmt.Printf("\naverage simulated seconds per 10-NN query:\n")
	fmt.Printf("  IQ-tree          %.4f\n", iqT/n)
	fmt.Printf("  VA-file (6 bit)  %.4f   (%.1fx slower)\n", vaT/n, vaT/iqT)
	fmt.Printf("  sequential scan  %.4f   (%.1fx slower)\n", scanT/n, scanT/iqT)
}
