// Quickstart: build an IQ-tree over a small uniform data set, run a
// nearest-neighbor, a k-nearest-neighbor and a range query, and inspect
// the simulated query cost the paper's evaluation is based on.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 20,000-point, 8-dimensional uniform database plus 3 held-out
	// queries following the same distribution.
	all := repro.GenUniform(1, 20003, 8)
	db, queries := repro.SplitDataset(all, 3)

	sto := repro.NewStore(repro.DefaultStoreConfig())
	tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
	if err != nil {
		log.Fatal(err)
	}

	st := tree.Stats()
	fmt.Printf("IQ-tree over %d points: %d quantized pages, bits histogram %v\n",
		st.Points, st.Pages, st.BitsHistogram)
	fmt.Printf("estimated fractal dimension D_F = %.2f, model-predicted cost %.4fs/query\n\n",
		st.FractalDim, st.PredictedCost)

	for i, q := range queries {
		// Each query gets its own store session; the session accumulates
		// the simulated seeks, block transfers and CPU time.
		s := sto.NewSession()
		nn, ok, err := tree.NearestNeighbor(s, q)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatal("no neighbor found")
		}
		fmt.Printf("query %d: NN id=%d dist=%.4f   (simulated %.4fs: %v)\n",
			i, nn.ID, nn.Dist, s.Time(), s.Stats)

		s = sto.NewSession()
		top, err := tree.KNN(s, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		for rank, nb := range top {
			fmt.Printf("   top-%d: id=%-6d dist=%.4f\n", rank+1, nb.ID, nb.Dist)
		}

		s = sto.NewSession()
		inRange, err := tree.RangeSearch(s, q, nn.Dist*1.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %d points within eps=%.4f (simulated %.4fs)\n\n",
			len(inRange), nn.Dist*1.5, s.Time())
	}
}
