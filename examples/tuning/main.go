// Tuning: the paper's core selling point is that the IQ-tree *adapts its
// compression rate automatically* while the VA-file must be hand-tuned
// per data set. This example makes that visible: it hand-tunes a VA-file
// the way the paper's authors did (trying 2..8 bits per dimension),
// shows how the optimum shifts across data sets, and contrasts it with
// the IQ-tree's cost-model-driven choice — including the model's
// predicted query time next to the measured one.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	workloads := []struct {
		name string
		gen  func() []repro.Point
	}{
		{"UNIFORM-16 (40k)", func() []repro.Point { return repro.GenUniform(1, 40010, 16) }},
		{"COLOR (40k)", func() []repro.Point { return repro.GenColor(1, 40010) }},
		{"WEATHER (40k)", func() []repro.Point { return repro.GenWeather(1, 40010) }},
	}

	for _, w := range workloads {
		all := w.gen()
		db, queries := repro.SplitDataset(all, 10)
		fmt.Printf("=== %s ===\n", w.name)

		// The VA-file's manual tuning loop (paper Section 4.2).
		fmt.Printf("VA-file hand-tuning:")
		bestBits, bestT := 0, 0.0
		for bits := 2; bits <= 8; bits++ {
			sto := repro.NewStore(repro.DefaultStoreConfig())
			opt := repro.DefaultVAFileOptions()
			opt.Bits = bits
			va, err := repro.BuildVAFile(sto, db, opt)
			if err != nil {
				log.Fatal(err)
			}
			var total float64
			for _, q := range queries {
				s := sto.NewSession()
				if _, err := va.KNN(s, q, 1); err != nil {
					log.Fatal(err)
				}
				total += s.Time()
			}
			avg := total / float64(len(queries))
			fmt.Printf("  %db:%.3fs", bits, avg)
			if bestBits == 0 || avg < bestT {
				bestBits, bestT = bits, avg
			}
		}
		fmt.Printf("\n  -> best hand-tuned VA-file: %d bits, %.4fs/query\n", bestBits, bestT)

		// The IQ-tree needs no tuning: the cost model picks a quantization
		// level per page.
		sto := repro.NewStore(repro.DefaultStoreConfig())
		tree, err := repro.BuildIQTree(sto, db, repro.DefaultIQTreeOptions())
		if err != nil {
			log.Fatal(err)
		}
		st := tree.Stats()
		var total float64
		for _, q := range queries {
			s := sto.NewSession()
			if _, err := tree.KNN(s, q, 1); err != nil {
				log.Fatal(err)
			}
			total += s.Time()
		}
		measured := total / float64(len(queries))
		fmt.Printf("IQ-tree (automatic): bits histogram %v, D_F=%.2f\n", st.BitsHistogram, st.FractalDim)
		fmt.Printf("  model-predicted %.4fs/query, measured %.4fs/query", st.PredictedCost, measured)
		if measured < bestT {
			fmt.Printf("  (%.1fx faster than the best hand-tuned VA-file)\n\n", bestT/measured)
		} else {
			fmt.Printf("  (%.2fx of the best hand-tuned VA-file)\n\n", measured/bestT)
		}
	}
}
